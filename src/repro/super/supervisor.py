"""The supervisor: a Unix-init layer over Section 5.1 applications.

The paper stops at "run once and reap" — ``exec`` / ``waitFor`` / exit
codes.  A production multi-processing JVM serving long-lived services
needs the other half of Unix process management: an *init* that respawns
failed services, backs off when they crash-loop, and notices sickness
before death.

:class:`Supervisor` is that init, built entirely out of the paper's own
machinery:

* The supervisor itself is an **ordinary application**
  (``super.Supervisord``), launched through the normal exec path.  Its
  code source holds *no* special grants — services are respawned as
  children of the supervisor application, inheriting its user exactly
  like any Section 5.1 child.  Supervision confers no privilege: the
  login-program discipline (§5.2) applied to process management.
* Each service is reaped with the paper's own ``waitFor`` and respawned
  with the paper's own ``exec`` (via the unified
  :func:`~repro.core.execspec.launch`), so a supervised child is
  indistinguishable from a hand-launched one — same thread-group
  ancestry, same state inheritance, same security walk.
* Restart decisions follow the :class:`~repro.super.spec.ServiceSpec`:
  ``permanent`` / ``transient`` / ``one_shot`` policies, exponential
  backoff with per-service deterministic jitter, and a restart budget
  (``max_restarts`` within ``restart_window`` seconds) whose exhaustion
  **escalates** the service to ``failed`` instead of melting the VM.
* Health probes (a liveness callable and/or a heartbeat deadline) mark a
  service ``degraded`` while it still runs — the monitor tick also
  offers the ``super.heartbeat`` fault point, so kill-on-heartbeat
  faults drive the whole respawn matrix deterministically in tests.

Observability rides the usual surfaces: ``super.restarts`` /
``super.escalations`` counters, tracer events for every state change,
``/proc/super/services``, and the ``svc`` coreutil.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

from repro.core.execspec import ExecSpec, launch
from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import IllegalArgumentException, IllegalStateException
from repro.jvm.threads import JThread, checkpoint
from repro.security.codesource import CodeSource
from repro.super import faults
from repro.super.spec import ONE_SHOT, ServiceSpec, backoff_rng

CLASS_NAME = "super.Supervisord"
#: Deliberately grant-less: the supervisor needs no permission beyond
#: what every local application has.  Keeping applications alive is not
#: a privileged operation.
CODE_SOURCE = CodeSource(
    "file:/usr/local/java/tools/supervisord/Supervisord.class")

# Service states (the /proc/super/services STATE column).
SVC_NEW = "new"            # added, supervisor not started yet
SVC_RUNNING = "running"
SVC_DEGRADED = "degraded"  # alive but failing its health probe
SVC_BACKOFF = "backoff"    # died; waiting out the restart delay
SVC_DONE = "done"          # policy says no restart (clean one_shot etc.)
SVC_FAILED = "failed"      # restart budget exhausted — escalated
SVC_STOPPED = "stopped"    # operator stop (svc stop)


class SupervisedService:
    """One service under supervision: spec, live handle, and history."""

    def __init__(self, supervisor: "Supervisor", spec: ServiceSpec):
        self.supervisor = supervisor
        self.spec = spec
        self.state = SVC_NEW
        self.app = None                      # the live Application, or None
        self.restarts = 0                    # lifetime respawn count
        self.last_exit = None                # ExitStatus of the last death
        self.last_heartbeat: Optional[float] = None
        self.stop_requested = False
        self._loop_thread: Optional[JThread] = None
        self._window: deque = deque()        # restart timestamps (budget)
        self._rng = backoff_rng(spec.name, supervisor.seed)

    def beat(self) -> None:
        """Refresh the watchdog: the service proves it is still alive."""
        self.last_heartbeat = self.supervisor._clock()

    def snapshot(self) -> dict:
        app = self.app
        return {
            "name": self.spec.name,
            "state": self.state,
            "restarts": self.restarts,
            "policy": self.spec.restart,
            "class": self.spec.exec_spec.class_name,
            "app_id": app.app_id if app is not None else None,
            "last_code": self.last_exit.code
            if self.last_exit is not None else None,
        }


class Supervisor:
    """Declarative service supervision for one VM.

    Construct against a booted :class:`~repro.core.launcher.MultiProcVM`,
    :meth:`add` specs, then :meth:`start` — which launches the
    ``super.Supervisord`` application whose threads do all launching,
    reaping, and probing.  ``clock`` and ``sleep`` are injectable so the
    restart matrix is testable without wall-clock waits.
    """

    def __init__(self, mvm, name: str = "super", seed: int = 0,
                 probe_interval: float = 0.1, clock=time.monotonic,
                 sleep=None):
        self.mvm = mvm
        self.vm = mvm.vm
        self.name = name
        self.seed = seed
        self.probe_interval = probe_interval
        self._clock = clock
        from repro.sched import timers
        self._sleep = sleep if sleep is not None else timers.sleep
        self.metrics = self.vm.telemetry.metrics
        self.tracer = self.vm.telemetry.tracer
        self._services: dict[str, SupervisedService] = {}
        self._pending_spawns: deque = deque()
        self._lock = threading.RLock()
        self.app = None                      # the Supervisord application
        self._stopping = False
        if name in self.vm.supervisors:
            raise IllegalArgumentException(
                f"a supervisor named {name!r} already runs on this VM")
        self.vm.supervisors[name] = self

    # -- service table ---------------------------------------------------------

    def add(self, spec: ServiceSpec) -> SupervisedService:
        """Register a service; started by :meth:`start` (or immediately
        when the supervisor already runs)."""
        with self._lock:
            if spec.name in self._services:
                raise IllegalArgumentException(
                    f"service {spec.name!r} already supervised")
            service = SupervisedService(self, spec)
            self._services[spec.name] = service
        if self.app is not None:
            self._request_spawn(service)
        return service

    def service(self, name: str) -> SupervisedService:
        with self._lock:
            service = self._services.get(name)
        if service is None:
            raise IllegalArgumentException(f"no service named {name!r}")
        return service

    def services(self) -> list[SupervisedService]:
        with self._lock:
            return list(self._services.values())

    # -- lifecycle -------------------------------------------------------------

    def start(self, user=None) -> "Supervisor":
        """Launch the supervisor application and every registered service.

        ``user`` optionally pins the supervisor's (and therefore its
        services') running user; default is inherited from the caller,
        like any exec.
        """
        if self.app is not None:
            return self
        if CLASS_NAME not in self.vm.registry:
            self.vm.registry.register(build_material())
        self.app = launch(
            ExecSpec(CLASS_NAME, (self.name,), user=user,
                     name=f"supervisord-{self.name}"),
            vm=self.vm, parent=self.mvm.initial)
        return self

    def shutdown(self) -> None:
        """Stop supervising and tear down the supervisor application
        (its services die with it — they are its children)."""
        self._stopping = True
        if self.app is not None:
            self.app.destroy()
            self.app.wait_for(5.0)
        self.vm.supervisors.pop(self.name, None)

    # -- operator surface (the svc coreutil) -----------------------------------

    def stop_service(self, name: str) -> None:
        service = self.service(name)
        service.stop_requested = True
        app = service.app
        if app is not None:
            app.destroy()

    def start_service(self, name: str) -> None:
        """Request a (re)start; the supervisor's own watchdog thread acts.

        Operators — the ``svc`` tool, any application poking the
        supervisor object — never spawn threads in the supervisor's
        group themselves (they would need ``modifyThreadGroup`` on a
        foreign application); they enqueue, and the next watchdog tick
        spawns from inside the supervisor application.
        """
        service = self.service(name)
        service.stop_requested = False
        # A fresh operator start resets the budget and the escalation.
        service._window.clear()
        self._request_spawn(service)

    def _request_spawn(self, service: SupervisedService) -> None:
        with self._lock:
            if service not in self._pending_spawns:
                self._pending_spawns.append(service)

    # -- the supervisor application's body -------------------------------------

    def _run(self, ctx) -> None:
        """Main body of ``super.Supervisord`` (runs inside the app)."""
        if self.app is None:
            # The app's main thread can outrun start()'s assignment.
            self.app = ctx.app
        with self._lock:
            services = list(self._services.values())
        for service in services:
            self._spawn_loop(service)
        # The watchdog tick: deferred spawns, health probes, and the
        # heartbeat fault point.
        while not self._stopping:
            checkpoint()
            self._drain_pending_spawns()
            self._probe_tick()
            self._sleep(self.probe_interval)

    def _drain_pending_spawns(self) -> None:
        """Act on queued start requests from inside the supervisor app."""
        requeue = []
        try:
            while True:
                with self._lock:
                    if not self._pending_spawns:
                        return
                    service = self._pending_spawns.popleft()
                    loop = service._loop_thread
                    alive = loop is not None and loop.is_alive()
                if service.stop_requested or self._stopping:
                    continue
                if alive:
                    if service.app is None:
                        # The old loop is mid-exit: retry next tick.
                        requeue.append(service)
                    continue  # already running — the request is moot
                self._spawn_loop(service)
        finally:
            with self._lock:
                self._pending_spawns.extend(requeue)

    def _spawn_loop(self, service: SupervisedService) -> None:
        """One launch-and-reap thread per service, inside the app.

        The explicit group keeps the loop a supervisor-app thread even
        when ``add``/``start_service`` is called from the host: loops
        must die with the supervisor, not with whoever poked it.
        """
        group = self.app.thread_group if self.app is not None else None
        thread = JThread(target=lambda: self._service_loop(service),
                         name=f"svc-{service.spec.name}", group=group,
                         daemon=False)
        with self._lock:
            service._loop_thread = thread
        thread.start()

    def _service_loop(self, service: SupervisedService) -> None:
        spec = service.spec
        while True:
            checkpoint()
            code = self._run_once(service)
            if service.stop_requested or self._stopping:
                self._set_state(service, SVC_STOPPED)
                return
            if not spec.should_restart(code):
                self._set_state(service, SVC_DONE)
                return
            # Restart budget: more than max_restarts inside the window
            # escalates instead of melting the VM with a crash loop.
            now = self._clock()
            window = service._window
            while window and now - window[0] > spec.restart_window:
                window.popleft()
            if len(window) >= spec.max_restarts:
                self._set_state(service, SVC_FAILED)
                self.metrics.counter("super.escalations",
                                     service=spec.name).inc()
                self.tracer.event("super.escalated", service=spec.name,
                                  restarts=service.restarts)
                return
            window.append(now)
            delay = spec.backoff.delay(len(window) - 1, service._rng)
            service.restarts += 1
            self.metrics.counter("super.restarts", service=spec.name).inc()
            self.tracer.event("super.restart", service=spec.name,
                              attempt=service.restarts, delay=delay)
            self._set_state(service, SVC_BACKOFF)
            self._sleep(delay)
            if service.stop_requested or self._stopping:
                self._set_state(service, SVC_STOPPED)
                return

    def _run_once(self, service: SupervisedService) -> int:
        """Launch the service, wait it out, record how it died.

        Returns the exit code (nonzero for a launch that failed before
        producing an application — an injected start fault, admission
        shedding, a missing class).
        """
        spec = service.spec
        try:
            app = launch(spec.exec_spec, vm=self.vm, parent=self.app)
        except BaseException as exc:  # noqa: BLE001 - any launch failure
            self.tracer.event("super.launch_failed",
                              service=spec.name, error=str(exc))
            service.last_exit = None
            return 1 if spec.restart != ONE_SHOT else 0
        app.restarts = service.restarts
        service.app = app
        service.beat()
        self._set_state(service, SVC_RUNNING)
        status = app.wait()
        service.app = None
        service.last_exit = status
        return status.code if status is not None else 1

    def _probe_tick(self) -> None:
        """One watchdog pass: fault point, heartbeat age, liveness."""
        for service in self.services():
            app = service.app
            if app is None or service.state not in (SVC_RUNNING,
                                                    SVC_DEGRADED):
                continue
            # The kill-on-heartbeat fault point: armed kills destroy the
            # service's application from the supervisor's own context
            # (an ancestor, so no permission is needed).
            faults.hit(faults.POINT_HEARTBEAT,
                       service=service.spec.name, app=app)
            probe = service.spec.probe
            if probe is None:
                continue
            healthy = True
            if (probe.heartbeat_deadline is not None
                    and service.last_heartbeat is not None):
                age = self._clock() - service.last_heartbeat
                healthy = age <= probe.heartbeat_deadline
            if healthy and probe.liveness is not None:
                try:
                    healthy = bool(probe.liveness(app))
                except Exception:  # noqa: BLE001 - a sick probe is a sick service
                    healthy = False
            if not healthy and service.state == SVC_RUNNING:
                self._set_state(service, SVC_DEGRADED)
                self.metrics.counter("super.degraded",
                                     service=service.spec.name).inc()
            elif healthy and service.state == SVC_DEGRADED:
                self._set_state(service, SVC_RUNNING)

    def _set_state(self, service: SupervisedService, state: str) -> None:
        if service.state == state:
            return
        service.state = state
        self.tracer.event("super.service", service=service.spec.name,
                          state=state)

    # -- introspection (procfs and svc read these) -----------------------------

    def render_services(self) -> str:
        lines = ["SERVICE\tSTATE\tPOLICY\tRESTARTS\tAPP\tCLASS\tLAST"]
        for service in self.services():
            snap = service.snapshot()
            lines.append("\t".join([
                snap["name"], snap["state"], snap["policy"],
                str(snap["restarts"]),
                str(snap["app_id"]) if snap["app_id"] is not None else "-",
                snap["class"],
                str(snap["last_code"]) if snap["last_code"] is not None
                else "-"]))
        return "\n".join(lines) + "\n"


def build_material() -> ClassMaterial:
    material = ClassMaterial(
        CLASS_NAME, code_source=CODE_SOURCE,
        doc="Service supervisor: the Unix-init layer over Section 5.1 "
            "applications (restart policies, backoff, health probes).")

    @material.member
    def main(jclass, ctx, args):
        name = args[0] if args else "super"
        supervisor = ctx.vm.supervisors.get(name)
        if supervisor is None:
            raise IllegalStateException(
                f"no Supervisor object named {name!r} on this VM")
        supervisor._run(ctx)

    return material
