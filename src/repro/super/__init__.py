"""Supervision, admission control, and fault injection — keeping
applications alive (and the VM standing) under real multi-user load.

The paper's lifecycle story (Section 5.1) ends at ``exec`` / ``waitFor``
/ exit codes.  This package adds the Unix-init layer on top:

* :mod:`repro.super.supervisor` — declarative
  :class:`~repro.super.spec.ServiceSpec`\\ s driving an ordinary,
  unprivileged supervisor application that reaps and respawns services
  with exponential backoff, restart budgets, and health probes.
* :mod:`repro.super.admission` — the per-VM bounded run queue: capacity
  and per-user quotas at the launch choke point, with typed
  :class:`~repro.super.admission.AdmissionRejected` shedding.
* :mod:`repro.super.faults` — deterministic, seedable fault points
  threaded through app start, channel acquire, cluster placement, and
  the supervisor heartbeat, so the whole restart/backoff/failover
  matrix is testable without sleeps.

Import structure: ``faults`` and ``admission`` depend only on the JVM
layer and are imported eagerly (the application core itself uses them);
the supervisor names are PEP 562-lazy because they sit *above* the
application core and would otherwise close an import cycle.
"""

from repro.super import faults
from repro.super.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
)
from repro.super.faults import FaultInjector, InjectedFault

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionRejected",
    "BackoffPolicy",
    "FaultInjector",
    "HealthProbe",
    "InjectedFault",
    "ServiceSpec",
    "Supervisor",
    "faults",
    "restart_delays",
]

_LAZY = {
    "ServiceSpec": "repro.super.spec",
    "BackoffPolicy": "repro.super.spec",
    "HealthProbe": "repro.super.spec",
    "restart_delays": "repro.super.spec",
    "Supervisor": "repro.super.supervisor",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
