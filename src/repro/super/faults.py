"""Deterministic, seedable fault injection for the supervision matrix.

The restart/backoff/failover behaviour of the supervisor (and of the
cluster failover it rides on) is only trustworthy if it can be *driven*:
a test must be able to say "the next two launches of this service fail",
"the next channel acquire takes 50 ms", or "kill the service the next
time its heartbeat is checked" — and get exactly that, every run,
without sleeping until something racy happens to go wrong.

:class:`FaultInjector` is that switchboard.  Production code is threaded
with named **fault points** (module constants below) that call
:func:`hit`; when no injector is installed the call is one global load
and a ``None`` check — effectively free.  Tests install an injector
(usually via the :func:`injected` context manager) and arm *rules*:

``fail_next(point, n)``
    The next ``n`` hits of ``point`` raise (``InjectedFault`` by
    default, or any exception the rule was armed with).
``delay_next(point, seconds, n)``
    The next ``n`` hits sleep for ``seconds`` through the interruptible
    :meth:`~repro.jvm.threads.JThread.sleep`, so a stopping application
    never wedges inside an injected latency.
``kill_next(point, n)``
    The next ``n`` hits destroy the application carried in the hit
    context (the supervisor's heartbeat probe passes its service's
    application) — the "kill-on-heartbeat" fault.
``fail_rate(point, rate)``
    Probabilistic failure drawn from a :class:`random.Random` seeded at
    injector construction: the same seed yields the same fire pattern,
    run after run.

Rules may be scoped with keyword matchers (``fail_next("app.start",
class_name="tools.Sleep")``) that must be a subset of the hit context.
Every fire is counted (:meth:`FaultInjector.fires`) so tests assert on
exact fault sequences instead of wall-clock coincidence.
"""

from __future__ import annotations

import contextlib
import random
import threading
from typing import Callable, Optional

from repro.jvm.errors import JavaException
from repro.jvm.threads import JThread

#: Fault points threaded through the kernel.  A point name is just a
#: string — subsystems may add their own — but these are the ones the
#: supervision matrix exercises.
POINT_APP_START = "app.start"          # Application launch (local exec)
POINT_DIST_ACQUIRE = "dist.acquire"    # channel-pool acquire
POINT_CLUSTER_PLACE = "cluster.place"  # scheduler placement decision
POINT_HEARTBEAT = "super.heartbeat"    # supervisor health probe


class InjectedFault(JavaException):
    """The failure raised by an armed ``fail`` rule.

    Carries the fault point so handlers (and tests) can tell an injected
    failure from an organic one.
    """

    def __init__(self, message: str | None = None,
                 point: str | None = None):
        super().__init__(message)
        self.point = point


class _Rule:
    """One armed behaviour at one fault point."""

    __slots__ = ("action", "remaining", "rate", "seconds", "exc_factory",
                 "match")

    def __init__(self, action: str, remaining: Optional[int] = None,
                 rate: float = 0.0, seconds: float = 0.0,
                 exc_factory: Optional[Callable] = None,
                 match: Optional[dict] = None):
        self.action = action          # "fail" | "delay" | "kill"
        self.remaining = remaining    # None = unlimited (rate rules)
        self.rate = rate              # 0 = always fire while remaining > 0
        self.seconds = seconds
        self.exc_factory = exc_factory
        self.match = match or {}

    def matches(self, ctx: dict) -> bool:
        return all(ctx.get(key) == value for key, value in
                   self.match.items())


class FaultInjector:
    """A deterministic switchboard of armed fault rules.

    ``seed`` fixes the random stream used by rate rules; ``sleep`` is
    injectable so latency tests can record delays instead of serving
    them.
    """

    def __init__(self, seed: int = 0,
                 sleep: Optional[Callable[[float], None]] = None):
        self.seed = seed
        self._rng = random.Random(seed)
        from repro.sched import timers
        self._sleep = sleep if sleep is not None else timers.sleep
        self._rules: dict[str, list[_Rule]] = {}
        self._fired: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- arming ----------------------------------------------------------------

    def _arm(self, point: str, rule: _Rule) -> "FaultInjector":
        with self._lock:
            self._rules.setdefault(point, []).append(rule)
        return self

    def fail_next(self, point: str, n: int = 1,
                  exc: Optional[Callable] = None,
                  **match) -> "FaultInjector":
        """The next ``n`` matching hits of ``point`` raise."""
        return self._arm(point, _Rule("fail", remaining=n,
                                      exc_factory=exc, match=match))

    def delay_next(self, point: str, seconds: float, n: int = 1,
                   **match) -> "FaultInjector":
        """The next ``n`` matching hits sleep for ``seconds``."""
        return self._arm(point, _Rule("delay", remaining=n,
                                      seconds=seconds, match=match))

    def kill_next(self, point: str, n: int = 1, **match) -> "FaultInjector":
        """The next ``n`` matching hits destroy the context's ``app``."""
        return self._arm(point, _Rule("kill", remaining=n, match=match))

    def fail_rate(self, point: str, rate: float,
                  exc: Optional[Callable] = None,
                  **match) -> "FaultInjector":
        """Fail a seeded-deterministic fraction of matching hits."""
        return self._arm(point, _Rule("fail", remaining=None, rate=rate,
                                      exc_factory=exc, match=match))

    # -- observation -----------------------------------------------------------

    def fires(self, point: Optional[str] = None):
        """Fire counts: one int for ``point``, else the whole dict."""
        with self._lock:
            if point is not None:
                return self._fired.get(point, 0)
            return dict(self._fired)

    def reset(self) -> None:
        with self._lock:
            self._rules.clear()
            self._fired.clear()
            self._rng = random.Random(self.seed)

    # -- the hot path ----------------------------------------------------------

    def hit(self, point: str, **ctx) -> None:
        """Evaluate armed rules at ``point``; may raise, sleep, or kill."""
        actions: list[_Rule] = []
        with self._lock:
            rules = self._rules.get(point)
            if not rules:
                return
            for rule in list(rules):
                if rule.remaining is not None and rule.remaining <= 0:
                    rules.remove(rule)
                    continue
                if not rule.matches(ctx):
                    continue
                if rule.rate and self._rng.random() >= rule.rate:
                    continue
                if rule.remaining is not None:
                    rule.remaining -= 1
                    if rule.remaining <= 0:
                        rules.remove(rule)
                self._fired[point] = self._fired.get(point, 0) + 1
                actions.append(rule)
        # Act outside the lock: delays and kills must never hold it.
        for rule in actions:
            if rule.action == "delay":
                self._sleep(rule.seconds)
            elif rule.action == "kill":
                app = ctx.get("app")
                if app is not None:
                    app.destroy()
            elif rule.action == "fail":
                if rule.exc_factory is not None:
                    raise rule.exc_factory()
                raise InjectedFault(
                    f"injected fault at {point} ({ctx or 'no context'})",
                    point=point)


#: The installed injector, or None (the inert default).
_active: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    return _active


def install(injector: Optional[FaultInjector]) -> Optional[FaultInjector]:
    """Install (or, with None, remove) the process-wide injector."""
    global _active
    previous = _active
    _active = injector
    return previous


def hit(point: str, **ctx) -> None:
    """Production-side fault point: free when nothing is installed."""
    injector = _active
    if injector is None:
        return
    injector.hit(point, **ctx)


@contextlib.contextmanager
def injected(seed: int = 0,
             sleep: Optional[Callable[[float], None]] = None):
    """Scoped install: ``with injected() as faults: faults.fail_next(...)``."""
    injector = FaultInjector(seed=seed, sleep=sleep)
    previous = install(injector)
    try:
        yield injector
    finally:
        install(previous)
