"""Admission control: the VM-wide bounded run queue with per-user quotas.

The paper's resource model (:class:`~repro.core.application.
ResourceLimits`) bounds what one *running* application may consume; it
says nothing about how many applications a VM will agree to run at once.
Under heavy multi-user traffic that missing half is the difference
between graceful degradation and collapse: every ``exec`` succeeds,
every new application starves every older one, and the node falls over
with all of them half-finished.

:class:`AdmissionController` is the other half, riding the same
enforce-and-record conventions as ``ResourceLimits``:

* a **VM-wide capacity** (``max_running``) on concurrently admitted
  launches, with a **bounded wait queue** (``max_queued``) in front of
  it — the run queue is FIFO-fair but never lets one saturated user
  block another user whose quota still has room;
* **per-user quotas** (``per_user_running`` / ``per_user_queued``,
  overridable per user with :meth:`set_user_quota`) so one user cannot
  consume the whole VM — the admission analogue of the Section 5.3 rule
  that permissions attach to *users*, not just code;
* **typed shedding**: when a launch cannot be admitted it either blocks
  up to its deadline (``ExecSpec.admission_timeout``) or fails fast with
  :class:`AdmissionRejected`, whose ``reason`` names the exhausted
  bound; every rejection is counted in telemetry
  (``admission.rejected``).  There is no block-forever mode, so the
  queue cannot deadlock.

Installation is opt-in: ``MultiProcVM.boot(admission=AdmissionPolicy
(...))`` or :meth:`AdmissionController.install`.  Enforcement happens at
the single local launch choke point (``Application`` exec), so remote
launches arriving over the dist protocol are admission-controlled by the
*target* VM — the backpressure signal travels back as a typed error
frame instead of an overloaded node silently keeling over.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.jvm.errors import IllegalStateException


class AdmissionRejected(IllegalStateException):
    """A launch was shed by admission control.

    ``reason`` names the exhausted bound: ``"capacity"`` (saturated and
    the caller declined to wait), ``"timeout"`` (waited out its
    deadline), ``"queue-full"`` / ``"user-queue"`` (wait queue bounds),
    or ``"user-concurrency"`` (per-user running quota).
    """

    def __init__(self, message: str | None = None,
                 reason: str | None = None,
                 user: str | None = None):
        super().__init__(message)
        self.reason = reason
        self.user = user


@dataclass(frozen=True)
class AdmissionPolicy:
    """The bounds one VM enforces at its launch choke point.

    ``None`` disables a bound, mirroring ``ResourceLimits`` semantics.
    """

    max_running: Optional[int] = None
    max_queued: int = 16
    per_user_running: Optional[int] = None
    per_user_queued: Optional[int] = None


class AdmissionTicket:
    """One admitted launch; releasing it frees the slot.

    The exec path attaches :meth:`release` as the application's exit
    hook, so the slot frees exactly when the reaper runs.  Release is
    idempotent (a failed launch releases immediately; the hook then
    no-ops).
    """

    __slots__ = ("_controller", "user", "_released")

    def __init__(self, controller: "AdmissionController", user: str):
        self._controller = controller
        self.user = user
        self._released = False

    def release(self) -> None:
        controller = self._controller
        with controller._cond:
            if self._released:
                return
            self._released = True
        controller._release(self.user)


class _Waiter:
    """One thread queued for admission."""

    __slots__ = ("user", "granted", "abandoned")

    def __init__(self, user: str):
        self.user = user
        self.granted = False
        self.abandoned = False


class AdmissionController:
    """The per-VM run queue: capacity, quotas, and typed shedding."""

    def __init__(self, vm, policy: Optional[AdmissionPolicy] = None,
                 clock=time.monotonic):
        self.vm = vm
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.metrics = vm.telemetry.metrics
        self._clock = clock
        self._cond = threading.Condition()
        self._running_total = 0
        self._running_by_user: dict[str, int] = {}
        self._queue: list[_Waiter] = []
        self._user_quotas: dict[str, AdmissionPolicy] = {}
        # Cumulative totals mirrored into metrics; kept here too so
        # /proc/super/admission renders without scanning time series.
        self.admitted = 0
        self.rejected = 0
        self.queued_ever = 0

    def install(self) -> "AdmissionController":
        """Attach to the VM: the exec path consults ``vm.admission``."""
        self.vm.admission = self
        return self

    def set_user_quota(self, user: str,
                       running: Optional[int] = None,
                       queued: Optional[int] = None) -> None:
        """Override the per-user bounds for one user."""
        self._user_quotas[user] = AdmissionPolicy(
            per_user_running=running, per_user_queued=queued)

    # -- bound resolution ------------------------------------------------------

    def _user_running_bound(self, user: str) -> Optional[int]:
        quota = self._user_quotas.get(user)
        if quota is not None and quota.per_user_running is not None:
            return quota.per_user_running
        return self.policy.per_user_running

    def _user_queued_bound(self, user: str) -> Optional[int]:
        quota = self._user_quotas.get(user)
        if quota is not None and quota.per_user_queued is not None:
            return quota.per_user_queued
        return self.policy.per_user_queued

    def _fits(self, user: str) -> bool:
        """Would admitting ``user`` now respect every running bound?"""
        maximum = self.policy.max_running
        if maximum is not None and self._running_total >= maximum:
            return False
        user_max = self._user_running_bound(user)
        if user_max is not None \
                and self._running_by_user.get(user, 0) >= user_max:
            return False
        return True

    # -- admit / release -------------------------------------------------------

    def _admit_locked(self, user: str) -> AdmissionTicket:
        self._running_total += 1
        self._running_by_user[user] = \
            self._running_by_user.get(user, 0) + 1
        self.admitted += 1
        return AdmissionTicket(self, user)

    def _reject(self, user: str, reason: str,
                detail: str) -> AdmissionRejected:
        self.rejected += 1
        self.metrics.counter("admission.rejected", reason=reason,
                             user=user).inc()
        return AdmissionRejected(
            f"launch by {user!r} rejected: {detail}",
            reason=reason, user=user)

    def admit(self, user: str,
              timeout: Optional[float] = None) -> AdmissionTicket:
        """Admit a launch by ``user`` or raise :class:`AdmissionRejected`.

        ``timeout=None`` sheds immediately when saturated; a positive
        timeout queues (FIFO) and blocks up to the deadline.  Queue
        bounds are checked *before* queuing, so a full queue sheds
        instantly rather than piling up waiters.
        """
        with self._cond:
            if self._fits(user):
                ticket = self._admit_locked(user)
                self.metrics.counter("admission.admitted", user=user).inc()
                self._publish_gauges()
                return ticket
            # Saturated.  Quota-limited users shed with their own reason
            # even when they are willing to wait: their bound does not
            # free up because *other* users' launches finish.
            user_max = self._user_running_bound(user)
            if user_max is not None \
                    and self._running_by_user.get(user, 0) >= user_max:
                raise self._reject(
                    user, "user-concurrency",
                    f"user concurrency quota reached ({user_max})")
            if timeout is None or timeout <= 0:
                raise self._reject(
                    user, "capacity",
                    f"VM at capacity ({self.policy.max_running}) and no "
                    f"admission timeout given")
            if len(self._queue) >= self.policy.max_queued:
                raise self._reject(
                    user, "queue-full",
                    f"admission queue full ({self.policy.max_queued})")
            queued_bound = self._user_queued_bound(user)
            if queued_bound is not None:
                mine = sum(1 for w in self._queue if w.user == user)
                if mine >= queued_bound:
                    raise self._reject(
                        user, "user-queue",
                        f"user queue quota reached ({queued_bound})")
            waiter = _Waiter(user)
            self._queue.append(waiter)
            self.queued_ever += 1
            self.metrics.counter("admission.queued", user=user).inc()
            self._publish_gauges()
            deadline = self._clock() + timeout
            try:
                while not waiter.granted:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        raise self._reject(
                            user, "timeout",
                            f"waited {timeout:.3g}s for a slot")
                    self._cond.wait(remaining)
            finally:
                if waiter.granted:
                    pass  # slot already accounted by the granter
                else:
                    waiter.abandoned = True
                    if waiter in self._queue:
                        self._queue.remove(waiter)
                self._publish_gauges()
            self.metrics.counter("admission.admitted", user=user).inc()
            return AdmissionTicket(self, user)

    def _release(self, user: str) -> None:
        with self._cond:
            self._running_total -= 1
            count = self._running_by_user.get(user, 0) - 1
            if count > 0:
                self._running_by_user[user] = count
            else:
                self._running_by_user.pop(user, None)
            self._grant_waiters_locked()
            self._publish_gauges()

    def _grant_waiters_locked(self) -> None:
        """FIFO scan: grant every waiter that now fits.

        Scanning past a blocked waiter keeps one saturated user from
        head-of-line-blocking everyone else; among a single user's
        waiters order is preserved.
        """
        granted_any = False
        for waiter in list(self._queue):
            if not self._fits(waiter.user):
                continue
            self._queue.remove(waiter)
            waiter.granted = True
            self._admit_locked(waiter.user)
            granted_any = True
        if granted_any:
            self._cond.notify_all()

    def _publish_gauges(self) -> None:
        self.metrics.gauge("admission.running").set(self._running_total)
        self.metrics.gauge("admission.waiting").set(len(self._queue))

    # -- introspection (procfs reads this) -------------------------------------

    def stats(self) -> dict:
        with self._cond:
            return {
                "running": self._running_total,
                "waiting": len(self._queue),
                "admitted": self.admitted,
                "rejected": self.rejected,
                "queued_ever": self.queued_ever,
                "by_user": dict(sorted(self._running_by_user.items())),
            }

    def render_text(self) -> str:
        stats = self.stats()
        policy = self.policy
        lines = [
            f"running\t{stats['running']}",
            f"waiting\t{stats['waiting']}",
            f"admitted\t{stats['admitted']}",
            f"rejected\t{stats['rejected']}",
            f"queued_ever\t{stats['queued_ever']}",
            f"max_running\t{policy.max_running or '-'}",
            f"max_queued\t{policy.max_queued}",
            f"per_user_running\t{policy.per_user_running or '-'}",
            f"per_user_queued\t{policy.per_user_queued or '-'}",
        ]
        for user, count in stats["by_user"].items():
            lines.append(f"running.{user}\t{count}")
        return "\n".join(lines) + "\n"
