"""Declarative service descriptions for the supervisor.

A :class:`ServiceSpec` is the supervision analogue of an inittab line:
*what* to run (an :class:`~repro.core.execspec.ExecSpec`), *when* to
restart it (:data:`PERMANENT` / :data:`TRANSIENT` / :data:`ONE_SHOT`),
*how fast* (a :class:`BackoffPolicy` — exponential with deterministic
jitter), and *how to tell it is sick* before it dies (a liveness
callable and/or a heartbeat deadline).

Backoff is a pure function: :func:`restart_delays` maps (policy,
service name, seed, attempt count) to the exact delay sequence, so
tests assert on schedules instead of sleeping through them.  Jitter is
drawn from ``random.Random(f"{seed}:{name}")`` — two services with the
same policy de-synchronise, but every run of the same test produces the
same schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

#: Always restart, whatever the exit code — the init daemon's default.
PERMANENT = "permanent"
#: Restart only abnormal exits (nonzero code or a kill); a clean exit 0
#: means the service is done.
TRANSIENT = "transient"
#: Never restart; run to completion once and record the outcome.
ONE_SHOT = "one_shot"

RESTART_POLICIES = (PERMANENT, TRANSIENT, ONE_SHOT)


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with bounded, deterministic jitter.

    Delay for attempt *k* (0-based) is ``min(base * factor**k, cap)``
    scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]``.
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 5.0
    jitter: float = 0.1

    def delay(self, attempt: int, rng: random.Random) -> float:
        raw = min(self.base * (self.factor ** attempt), self.cap)
        if self.jitter:
            raw *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return raw


def backoff_rng(name: str, seed: int = 0) -> random.Random:
    """The jitter stream for one service: same seed+name, same stream."""
    return random.Random(f"{seed}:{name}")


def restart_delays(policy: BackoffPolicy, name: str, seed: int = 0,
                   attempts: int = 8) -> list[float]:
    """The exact delay schedule a service would see — pure, for tests."""
    rng = backoff_rng(name, seed)
    return [policy.delay(k, rng) for k in range(attempts)]


@dataclass(frozen=True)
class HealthProbe:
    """How the supervisor decides a running service is degraded.

    ``liveness`` is called with the service's application; a falsy
    return (or an exception) marks the service ``degraded``.
    ``heartbeat_deadline`` is the maximum age in seconds of the last
    :meth:`SupervisedService.beat` before the service is considered
    degraded — the classic watchdog.  Either may be None.
    """

    liveness: Optional[Callable] = None
    heartbeat_deadline: Optional[float] = None
    interval: float = 0.25


@dataclass(frozen=True)
class ServiceSpec:
    """One supervised service: the inittab line.

    ``exec_spec`` is the launch description; the supervisor launches it
    through the ordinary exec path, so the child runs under the
    supervisor's user and the target class's own code-source grants —
    supervision confers no privilege (§5.2's login-program discipline).

    ``max_restarts`` within ``restart_window`` seconds escalates the
    service to ``failed`` and stops respawning it: a crash-looping
    service must not melt the VM it is meant to keep healthy.
    """

    name: str
    exec_spec: object  # repro.core.execspec.ExecSpec (kept loose: no cycle)
    restart: str = PERMANENT
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    max_restarts: int = 5
    restart_window: float = 30.0
    probe: Optional[HealthProbe] = None

    def __post_init__(self):
        if self.restart not in RESTART_POLICIES:
            raise ValueError(
                f"unknown restart policy {self.restart!r}; expected one "
                f"of {RESTART_POLICIES}")

    def should_restart(self, code: int) -> bool:
        if self.restart == PERMANENT:
            return True
        if self.restart == TRANSIENT:
            return code != 0
        return False
