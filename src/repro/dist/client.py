"""Client side of distributed applications (Section 8, future work).

:func:`remote_exec` launches a class on *another JVM* (over the simulated
network) and returns a :class:`RemoteApplication` that behaves like a local
:class:`~repro.core.application.Application` handle: ``wait_for``,
``destroy``, captured output, an exit code.

:class:`DistributedApplication` is the paper's extended application notion
made concrete — "a set of threads" that spans JVMs: one local application
plus any number of remote parts, with collective wait and destroy.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Optional

from repro.dist import protocol
from repro.dist.pool import PooledChannel, pool_for
from repro.jvm.errors import (
    ConnectException,
    IOException,
    NodeUnavailableException,
    RemoteException,
    StreamClosedException,
    UnknownHostException,
)
from repro.jvm.threads import JThread
from repro.sched.timers import wait_until
from repro.net.sockets import Socket
from repro.super.admission import AdmissionRejected


class RemoteApplication:
    """A handle on an application running in another JVM.

    Speaks protocol 2 by default: the request is still a JSON line (so
    old daemons parse it) carrying ``"proto": 2``; replies are sniffed
    per frame, so a binary-framing daemon and a JSON-lines daemon are
    both handled transparently.  Connections come from the VM's
    ``(host, port)``-keyed channel pool and return to it after a clean
    exit against a protocol-2 peer; ``proto=1`` or ``pooled=False``
    reproduce the original one-connection-per-exec behaviour.
    """

    def __init__(self, ctx, host: str, port: int, user: str, password: str,
                 class_name: str, args: Optional[list[str]] = None,
                 stdout=None, stderr=None,
                 proto: int = protocol.PROTOCOL_VERSION,
                 pooled: bool = True, limits=None,
                 record: bool = False, phase: Optional[str] = None):
        self.host = host
        self.port = port
        self.class_name = class_name
        self._stdout = stdout
        self._stderr = stderr
        self._cond = threading.Condition()
        self.exit_code: Optional[int] = None
        self.error: Optional[str] = None
        #: Machine-readable error class from a typed ``err`` frame (e.g.
        #: ``"admission"`` when the target VM shed the launch).
        self.error_kind: Optional[str] = None
        self._finished = False
        self._started_monotonic = time.monotonic()
        self._ended_monotonic: Optional[float] = None
        #: True when the handle ended because the transport died (connection
        #: lost, stream error) rather than a remote launch/auth error — the
        #: cluster failover trigger.
        self.transport_lost = False
        self._output_chunks: list[bytes] = []
        self._proto = proto
        self._pool = pool_for(ctx.vm) if pooled else None
        self._released = False
        self._closed = False
        request = {"user": user, "password": password,
                   "class_name": class_name, "args": list(args or [])}
        if proto >= 2:
            request["proto"] = proto
        # ResourceLimits travel with the request (and are enforced by
        # the target VM); old daemons ignore the extra key.
        wire_limits = protocol.limits_to_wire(limits)
        if wire_limits is not None:
            request["limits"] = wire_limits
        # Policy learning mode and a launch-phase override travel the
        # same way as limits: optional keys old daemons ignore.
        if record:
            request["record"] = True
        if phase is not None:
            request["phase"] = phase
        # SM checkConnect applies here — on pool hits too: reaching out
        # over the network is a policy decision of *this* VM.  An
        # unreachable host is a typed NodeUnavailableException so
        # schedulers can tell "dead node" from "protocol error" (a
        # SecurityException still propagates as itself).
        try:
            self._conn = self._open_and_send(ctx, request)
        except (UnknownHostException, ConnectException) as exc:
            raise NodeUnavailableException(
                f"{host}:{port} unavailable: {exc}") from exc
        self._channel = self._conn.channel
        self._reader = JThread(target=self._read_loop,
                               name=f"rexec-client-{class_name}",
                               daemon=True)
        self._reader.start()

    def _open_and_send(self, ctx, request: dict) -> PooledChannel:
        """Connect (pooled or fresh) and ship the request frame.

        A pooled channel whose daemon hung up since it was parked raises
        on the send — that one retries once on a guaranteed-fresh
        connection, preserving fresh-connect failure semantics.
        """
        if self._pool is None:
            socket = Socket(ctx, self.host, self.port)
            channel = protocol.FrameChannel(socket.input, socket.output)
            conn = PooledChannel(None, self.host, self.port, socket,
                                 channel, reused=False)
            channel.send(request)
            return conn
        conn = self._pool.acquire(ctx, self.host, self.port)
        try:
            conn.channel.send(request)
        except StreamClosedException:
            stale_was_reused = conn.reused
            conn.close()
            if not stale_was_reused:
                raise
            conn = self._pool.acquire(ctx, self.host, self.port, fresh=True)
            conn.channel.send(request)
        return conn

    def _read_loop(self) -> None:
        try:
            while True:
                frame = self._channel.recv()
                if frame is None:
                    self._finish(None, "connection lost", transport=True)
                    return
                kind = frame.get("t")
                if kind == "o":
                    self._on_output(frame.get("d", b""), self._stdout)
                elif kind == "e":
                    self._on_output(frame.get("d", b""), self._stderr)
                elif kind == "x":
                    self._finish(int(frame.get("code", -1)), None)
                    return
                elif kind == "err":
                    self._finish(None, str(frame.get("msg", "error")),
                                 error_kind=frame.get("kind"))
                    return
        except IOException as exc:
            self._finish(None, str(exc), transport=True)

    def _on_output(self, data, sink) -> None:
        # Binary frames carry raw bytes; JSON frames carry text (or bytes
        # already, when the base64 escape was decoded for us).
        chunk = data.encode("utf-8") if isinstance(data, str) else bytes(data)
        with self._cond:
            self._output_chunks.append(chunk)
        if sink is not None:
            sink.write(chunk)

    def _finish(self, code: Optional[int], error: Optional[str],
                transport: bool = False,
                error_kind: Optional[str] = None) -> None:
        with self._cond:
            self.exit_code = code
            self.error = error
            self.error_kind = error_kind
            self.transport_lost = transport
            self._finished = True
            self._ended_monotonic = time.monotonic()
            self._cond.notify_all()
        if transport:
            # The node (not the request) failed: drop every idle pooled
            # channel to it so retries never dial the corpse again.
            if self._pool is not None:
                self._pool.invalidate(self.host, self.port)
            self.close()
        else:
            self._park_connection()

    def _park_connection(self) -> None:
        """After a clean exit, return a persistent connection to the pool.

        Only protocol-2 peers keep the connection open after the exit
        frame (seen as binary reply frames); a JSON-lines daemon is
        about to hang up, so its connection is not reusable.
        """
        with self._cond:
            if self._released or self._closed:
                return
            if self._pool is not None and self._channel.peer_binary:
                self._released = True
                park = True
            else:
                # A JSON-lines peer is hanging up (or pooling is off):
                # the connection is not reusable, so close it now.
                self._closed = True
                park = False
        if park:
            self._conn.release()
        else:
            self._conn.close()

    # -- the Application-like surface ------------------------------------------

    def wait_for(self, timeout: Optional[float] = None) -> Optional[int]:
        """Block until the remote application ends; returns its exit code.

        Raises :class:`RemoteException` if the remote side reported a
        launch or authentication error, or a typed
        :class:`~repro.super.admission.AdmissionRejected` when the
        target VM shed the launch at admission — backpressure survives
        the network.

        Soft-deprecated in favour of :meth:`wait` (typed result).
        """
        with self._cond:
            done = wait_until(self._cond,
                              lambda: self._finished,
                              timeout=timeout)
            if not done:
                return None
            if self.error is not None:
                if self.error_kind == "admission":
                    raise AdmissionRejected(self.error, reason="remote")
                raise RemoteException(self.error)
            return self.exit_code

    def wait(self, timeout: Optional[float] = None):
        """Block like :meth:`wait_for` but return a typed ``ExitStatus``."""
        code = self.wait_for(timeout)
        if code is None:
            return None
        from repro.core.application import KILLED_EXIT_CODE, ExitStatus
        with self._cond:
            ended = self._ended_monotonic
            duration = (ended - self._started_monotonic) \
                if ended is not None else 0.0
        cause = "killed" if code == KILLED_EXIT_CODE else None
        return ExitStatus(code=code, signal_like_cause=cause,
                          duration=duration)

    def destroy(self) -> None:
        """Ask the remote JVM to destroy the remote application."""
        with self._cond:
            if self._released or self._closed:
                return  # already finished; the channel belongs to the pool
        try:
            # Control frames are always JSON lines: old daemons cannot
            # parse anything else, and new daemons sniff per frame.
            self._channel.send({"t": "kill"})
        except IOException:
            pass

    @property
    def terminated(self) -> bool:
        with self._cond:
            return self._finished

    @property
    def transport_binary(self) -> bool:
        """True once the peer has answered in binary frames (protocol 2)."""
        return self._channel.peer_binary

    def output_bytes(self) -> bytes:
        """Everything the remote application wrote, byte-exact."""
        with self._cond:
            return b"".join(self._output_chunks)

    def output_text(self) -> str:
        return self.output_bytes().decode("utf-8", errors="replace")

    def close(self) -> None:
        with self._cond:
            if self._released or self._closed:
                self._closed = True
                return
            self._closed = True
        self._conn.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RemoteApplication({self.class_name!r}@{self.host!r}, "
                f"code={self.exit_code})")


def remote_exec(ctx, host: str, class_name: str,
                args: Optional[list[str]] = None,
                user: str = "", password: str = "",
                port: int = 7100, stdout=None, stderr=None,
                proto: int = protocol.PROTOCOL_VERSION,
                pooled: bool = True, limits=None) -> RemoteApplication:
    """Deprecated shim: launch ``class_name`` on the JVM at ``host:port``.

    Prefer ``launch(ExecSpec(class_name, args,
    placement=Placement.remote(host, port), ...))``.  ``proto=1`` forces
    the legacy JSON-lines handshake; ``pooled=False`` opens (and owns) a
    dedicated connection — both mainly for tests and the transport
    benchmarks.
    """
    warnings.warn(
        "remote_exec() is deprecated; use repro.launch(ExecSpec(..., "
        "placement=Placement.remote(host, port)))",
        DeprecationWarning, stacklevel=2)
    return RemoteApplication(ctx, host, port, user, password, class_name,
                             args, stdout=stdout, stderr=stderr,
                             proto=proto, pooled=pooled, limits=limits)


class DistributedApplication:
    """An application whose threads span several JVMs (Section 8).

    Wraps the local :class:`~repro.core.application.Application` and its
    remote parts; waiting and destroying act on the whole set.
    """

    def __init__(self, local=None):
        self.local = local
        self.remote_parts: list[RemoteApplication] = []

    def add_remote(self, part: RemoteApplication) -> RemoteApplication:
        self.remote_parts.append(part)
        return part

    def wait_all(self, timeout: Optional[float] = None) -> list:
        """Wait every part out; returns the exit codes (local first)."""
        codes = []
        if self.local is not None:
            codes.append(self.local.wait_for(timeout))
        for part in self.remote_parts:
            codes.append(part.wait_for(timeout))
        return codes

    def destroy_all(self) -> None:
        """Tear the whole distributed application down, everywhere."""
        for part in self.remote_parts:
            part.destroy()
        if self.local is not None:
            self.local.destroy()

    @property
    def terminated(self) -> bool:
        local_done = self.local is None or self.local.terminated
        return local_done and all(p.terminated for p in self.remote_parts)
