"""Client side of distributed applications (Section 8, future work).

:func:`remote_exec` launches a class on *another JVM* (over the simulated
network) and returns a :class:`RemoteApplication` that behaves like a local
:class:`~repro.core.application.Application` handle: ``wait_for``,
``destroy``, captured output, an exit code.

:class:`DistributedApplication` is the paper's extended application notion
made concrete — "a set of threads" that spans JVMs: one local application
plus any number of remote parts, with collective wait and destroy.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.dist import protocol
from repro.jvm.errors import (
    ConnectException,
    IOException,
    NodeUnavailableException,
    RemoteException,
    UnknownHostException,
)
from repro.jvm.threads import JThread, interruptible_wait
from repro.net.sockets import Socket


class RemoteApplication:
    """A handle on an application running in another JVM."""

    def __init__(self, ctx, host: str, port: int, user: str, password: str,
                 class_name: str, args: Optional[list[str]] = None,
                 stdout=None, stderr=None):
        self.host = host
        self.class_name = class_name
        self._stdout = stdout
        self._stderr = stderr
        self._cond = threading.Condition()
        self.exit_code: Optional[int] = None
        self.error: Optional[str] = None
        self._finished = False
        #: True when the handle ended because the transport died (connection
        #: lost, stream error) rather than a remote launch/auth error — the
        #: cluster failover trigger.
        self.transport_lost = False
        self._output_chunks: list[str] = []
        # SM checkConnect applies here: reaching out over the network is a
        # policy decision of *this* VM.  An unreachable host is a typed
        # NodeUnavailableException so schedulers can tell "dead node" from
        # "protocol error" (a SecurityException still propagates as itself).
        try:
            self._socket = Socket(ctx, host, port)
        except (UnknownHostException, ConnectException) as exc:
            raise NodeUnavailableException(
                f"{host}:{port} unavailable: {exc}") from exc
        protocol.send_frame(self._socket.output, {
            "user": user, "password": password,
            "class_name": class_name, "args": list(args or [])})
        self._reader = JThread(target=self._read_loop,
                               name=f"rexec-client-{class_name}",
                               daemon=True)
        self._reader.start()

    def _read_loop(self) -> None:
        try:
            while True:
                frame = protocol.recv_frame(self._socket.input)
                if frame is None:
                    self._finish(None, "connection lost", transport=True)
                    return
                kind = frame.get("t")
                if kind == "o":
                    self._on_output(frame.get("d", ""), self._stdout)
                elif kind == "e":
                    self._on_output(frame.get("d", ""), self._stderr)
                elif kind == "x":
                    self._finish(int(frame.get("code", -1)), None)
                    return
                elif kind == "err":
                    self._finish(None, str(frame.get("msg", "error")))
                    return
        except IOException as exc:
            self._finish(None, str(exc), transport=True)

    def _on_output(self, data: str, sink) -> None:
        with self._cond:
            self._output_chunks.append(data)
        if sink is not None:
            sink.write(data.encode("utf-8") if isinstance(data, str)
                       else data)

    def _finish(self, code: Optional[int], error: Optional[str],
                transport: bool = False) -> None:
        with self._cond:
            self.exit_code = code
            self.error = error
            self.transport_lost = transport
            self._finished = True
            self._cond.notify_all()

    # -- the Application-like surface ------------------------------------------

    def wait_for(self, timeout: Optional[float] = None) -> Optional[int]:
        """Block until the remote application ends; returns its exit code.

        Raises :class:`RemoteException` if the remote side reported a
        launch or authentication error.
        """
        with self._cond:
            done = interruptible_wait(self._cond,
                                      lambda: self._finished,
                                      timeout=timeout)
            if not done:
                return None
            if self.error is not None:
                raise RemoteException(self.error)
            return self.exit_code

    def destroy(self) -> None:
        """Ask the remote JVM to destroy the remote application."""
        try:
            protocol.send_frame(self._socket.output, {"t": "kill"})
        except IOException:
            pass

    @property
    def terminated(self) -> bool:
        with self._cond:
            return self._finished

    def output_text(self) -> str:
        with self._cond:
            return "".join(self._output_chunks)

    def close(self) -> None:
        self._socket.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RemoteApplication({self.class_name!r}@{self.host!r}, "
                f"code={self.exit_code})")


def remote_exec(ctx, host: str, class_name: str,
                args: Optional[list[str]] = None,
                user: str = "", password: str = "",
                port: int = 7100, stdout=None,
                stderr=None) -> RemoteApplication:
    """Launch ``class_name`` on the JVM listening at ``host:port``."""
    return RemoteApplication(ctx, host, port, user, password, class_name,
                             args, stdout=stdout, stderr=stderr)


class DistributedApplication:
    """An application whose threads span several JVMs (Section 8).

    Wraps the local :class:`~repro.core.application.Application` and its
    remote parts; waiting and destroying act on the whole set.
    """

    def __init__(self, local=None):
        self.local = local
        self.remote_parts: list[RemoteApplication] = []

    def add_remote(self, part: RemoteApplication) -> RemoteApplication:
        self.remote_parts.append(part)
        return part

    def wait_all(self, timeout: Optional[float] = None) -> list:
        """Wait every part out; returns the exit codes (local first)."""
        codes = []
        if self.local is not None:
            codes.append(self.local.wait_for(timeout))
        for part in self.remote_parts:
            codes.append(part.wait_for(timeout))
        return codes

    def destroy_all(self) -> None:
        """Tear the whole distributed application down, everywhere."""
        for part in self.remote_parts:
            part.destroy()
        if self.local is not None:
            self.local.destroy()

    @property
    def terminated(self) -> bool:
        local_done = self.local is None or self.local.terminated
        return local_done and all(p.terminated for p in self.remote_parts)
