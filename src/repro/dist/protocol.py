"""Wire protocol for distributed applications (Section 8, future work).

A minimal JSON-lines protocol over the simulated network's byte channels:

* the client's first frame is the *request*
  ``{"user": ..., "password": ..., "class_name": ..., "args": [...]}``;
* subsequent client frames are control messages (``{"t": "kill"}``);
* server frames stream the remote application's life:
  ``{"t": "o", "d": text}`` (stdout data), ``{"t": "e", "d": text}``
  (stderr data), ``{"t": "x", "code": n}`` (exit), or
  ``{"t": "err", "msg": ...}`` (launch/authentication failure).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.io.streams import InputStream, OutputStream
from repro.jvm.errors import IOException
from repro.telemetry import current_hub


def send_frame(output: OutputStream, frame: dict) -> None:
    """Serialize one frame as a JSON line."""
    payload = json.dumps(frame, separators=(",", ":")) + "\n"
    output.write(payload.encode("utf-8"))
    metrics = current_hub().metrics
    metrics.counter("dist.frames.sent",
                    type=str(frame.get("t", "req"))).inc()
    metrics.counter("dist.bytes.sent").inc(len(payload))


def recv_frame(source: InputStream) -> Optional[dict]:
    """Read one frame; None at end of stream."""
    line = source.read_line()
    if line is None:
        return None
    try:
        frame = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise IOException(f"malformed frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise IOException("malformed frame: not an object")
    metrics = current_hub().metrics
    metrics.counter("dist.frames.received",
                    type=str(frame.get("t", "req"))).inc()
    metrics.counter("dist.bytes.received").inc(len(line) + 1)
    return frame


class FrameOutputStream(OutputStream):
    """An OutputStream whose writes become ``o``/``e`` data frames.

    Handed to the remote application as its stdout/stderr: everything it
    prints travels back to the requesting JVM.
    """

    def __init__(self, transport: OutputStream, kind: str = "o"):
        super().__init__()
        self._transport = transport
        self._kind = kind

    def write(self, payload: bytes) -> None:
        self._ensure_open()
        send_frame(self._transport,
                   {"t": self._kind,
                    "d": payload.decode("utf-8", errors="replace")})

    def flush(self) -> None:
        self._transport.flush()

    def _close_impl(self) -> None:
        # The transport is shared with the exit frame; never close it here.
        pass
