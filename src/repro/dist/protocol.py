"""Wire protocol for distributed applications (Section 8, future work).

Two frame encodings share one connection:

* **JSON lines** (protocol 1, the original): one JSON object per
  ``\\n``-terminated line.  The client's first frame is the *request*
  ``{"user": ..., "password": ..., "class_name": ..., "args": [...]}``;
  subsequent client frames are control messages (``{"t": "kill"}``);
  server frames stream the remote application's life:
  ``{"t": "o", "d": text}`` (stdout data), ``{"t": "e", "d": text}``
  (stderr data), ``{"t": "x", "code": n}`` (exit), or
  ``{"t": "err", "msg": ...}`` (launch/authentication failure).
* **Binary framing** (protocol 2, the fast path): length-prefixed frames
  — one tag byte, a 4-byte big-endian length, then the payload.  Stdout
  and stderr data travel as *raw bytes* (no UTF-8 round trip, so
  non-UTF-8 program output survives); everything else is a JSON object
  in a ``TAG_JSON`` frame.

The encodings interoperate: requests are always JSON lines (old daemons
must be able to parse them) and carry ``"proto": 2`` when the client
speaks binary; a daemon that understands it answers in binary frames and
keeps the connection open for reuse, while an old daemon ignores the
extra key and answers in JSON lines.  Receivers never need to be told
which encoding is coming — no frame tag collides with ``{`` (0x7B), so
one byte of lookahead (:meth:`BufferedInputStream.peek_byte`) classifies
every frame.  :func:`recv_frame_auto` does exactly that.

On the JSON path, data frames whose bytes are not valid UTF-8 carry a
``"b"`` key (base64 of the exact bytes) next to the lossy ``"d"`` text,
so new peers round-trip binary output even in fallback mode while old
peers still display what they always displayed.

:class:`FrameChannel` bundles a buffered reader, a write-locked buffered
writer, and the negotiated encoding; :class:`FrameOutputStream` turns an
application's stdout/stderr writes into data frames, *coalescing* small
writes into one frame per newline / size threshold / latency bound.
"""

from __future__ import annotations

import base64
import json
import struct
import threading
import time
from typing import Optional, Union

from repro.io.streams import (
    BufferedInputStream,
    BufferedOutputStream,
    InputStream,
    OutputStream,
)
from repro.jvm.errors import IOException
from repro.telemetry import current_hub

#: The protocol generation this client/daemon speaks.  Version 2 adds
#: binary framing and persistent (poolable) connections.
PROTOCOL_VERSION = 2

#: Binary frame tags.  None may equal ``{`` (0x7B): the first byte of a
#: frame is what distinguishes binary frames from JSON lines.
TAG_STDOUT = 0x01
TAG_STDERR = 0x02
TAG_JSON = 0x03

_DATA_TAGS = {TAG_STDOUT: "o", TAG_STDERR: "e"}
_KIND_TAGS = {"o": TAG_STDOUT, "e": TAG_STDERR}

#: Sanity bound on a single binary frame (malformed-length guard).
MAX_FRAME_PAYLOAD = 16 * 1024 * 1024

_HEADER = struct.Struct(">BI")

#: Coalescing defaults for :class:`FrameOutputStream`.
COALESCE_THRESHOLD = 4096
COALESCE_MAX_LATENCY = 0.05


def _count_sent(frame_type: str, nbytes: int) -> None:
    metrics = current_hub().metrics
    metrics.counter("dist.frames.sent", type=frame_type).inc()
    metrics.counter("dist.bytes.sent").inc(nbytes)


def _count_received(frame_type: str, nbytes: int) -> None:
    metrics = current_hub().metrics
    metrics.counter("dist.frames.received", type=frame_type).inc()
    metrics.counter("dist.bytes.received").inc(nbytes)


def ensure_buffered(source: InputStream) -> BufferedInputStream:
    """Wrap ``source`` for bulk reads (idempotent)."""
    if isinstance(source, BufferedInputStream):
        return source
    return BufferedInputStream(source)


# --------------------------------------------------------------------------
# ResourceLimits on the wire
# --------------------------------------------------------------------------

#: ResourceLimits fields carried in a request's ``"limits"`` object.
#: Old daemons ignore the extra key; old clients simply never send it.
_LIMIT_FIELDS = ("max_threads", "max_windows", "max_children",
                 "max_open_streams")


def limits_to_wire(limits) -> Optional[dict]:
    """A request-embeddable dict of the set ceilings, or None."""
    if limits is None:
        return None
    wire = {name: getattr(limits, name, None) for name in _LIMIT_FIELDS}
    wire = {name: int(value) for name, value in wire.items()
            if value is not None}
    return wire or None


def limits_from_wire(wire):
    """Rebuild :class:`~repro.core.application.ResourceLimits` (or None).

    Unknown keys and junk values are dropped, never fatal: a malformed
    limits object must not take down the daemon serving it.
    """
    if not isinstance(wire, dict):
        return None
    fields = {}
    for name in _LIMIT_FIELDS:
        value = wire.get(name)
        if isinstance(value, int) and not isinstance(value, bool) \
                and value >= 0:
            fields[name] = value
    if not fields:
        return None
    from repro.core.application import ResourceLimits
    return ResourceLimits(**fields)


# --------------------------------------------------------------------------
# JSON-lines encoding (protocol 1, and the v2 control/fallback frames)
# --------------------------------------------------------------------------

def send_frame(output: OutputStream, frame: dict) -> None:
    """Serialize one frame as a JSON line."""
    payload = json.dumps(frame, separators=(",", ":")) + "\n"
    output.write(payload.encode("utf-8"))
    _count_sent(str(frame.get("t", "req")), len(payload))


def _parse_json_frame(line: bytes) -> dict:
    try:
        frame = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise IOException(f"malformed frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise IOException("malformed frame: not an object")
    if "b" in frame and frame.get("t") in ("o", "e"):
        # The JSON fallback's binary escape: ``b`` holds the exact bytes.
        try:
            frame["d"] = base64.b64decode(frame["b"])
        except (ValueError, TypeError) as exc:
            raise IOException(f"malformed frame: bad base64: {exc}") from exc
    return frame


def recv_frame(source: InputStream) -> Optional[dict]:
    """Read one JSON-lines frame; None at end of stream."""
    line = source.read_line()
    if line is None:
        return None
    frame = _parse_json_frame(line)
    _count_received(str(frame.get("t", "req")), len(line) + 1)
    return frame


# --------------------------------------------------------------------------
# Binary framing (protocol 2)
# --------------------------------------------------------------------------

def encode_binary_frame(frame: dict) -> bytes:
    """One frame as ``tag | length | payload`` bytes."""
    kind = frame.get("t")
    data = frame.get("d")
    if kind in _KIND_TAGS and isinstance(data, (bytes, bytearray,
                                                memoryview)):
        payload = bytes(data)
        tag = _KIND_TAGS[kind]
    else:
        payload = json.dumps(frame, separators=(",", ":")).encode("utf-8")
        tag = TAG_JSON
    return _HEADER.pack(tag, len(payload)) + payload


def send_binary_frame(output: OutputStream, frame: dict) -> None:
    encoded = encode_binary_frame(frame)
    output.write(encoded)
    _count_sent(str(frame.get("t", "req")), len(encoded))


def recv_frame_auto(source: BufferedInputStream) -> Optional[dict]:
    """Read one frame of either encoding; None at end of stream.

    The first byte classifies the frame: ``{`` starts a JSON line, a
    known tag starts a binary frame, anything else is malformed.  Data
    frames received in binary carry ``bytes`` in ``"d"``.
    """
    first = source.peek_byte()
    if first < 0:
        return None
    if first == 0x7B:  # "{" — a JSON line
        return recv_frame(source)
    if first not in _DATA_TAGS and first != TAG_JSON:
        raise IOException(f"malformed frame: unknown tag 0x{first:02x}")
    header = source.read_exactly(_HEADER.size)
    tag, length = _HEADER.unpack(header)
    if length > MAX_FRAME_PAYLOAD:
        raise IOException(f"malformed frame: payload of {length} bytes")
    payload = source.read_exactly(length)
    if tag in _DATA_TAGS:
        frame: dict = {"t": _DATA_TAGS[tag], "d": payload}
    else:
        frame = _parse_json_frame(payload)
    frame["_binary"] = True
    _count_received(str(frame.get("t", "req")), _HEADER.size + length)
    return frame


# --------------------------------------------------------------------------
# FrameChannel — one framed connection
# --------------------------------------------------------------------------

class FrameChannel:
    """A framed connection: buffered reader, locked buffered writer.

    ``binary`` selects the *outbound* encoding (flipped by negotiation);
    ``peer_binary`` records whether the peer has been seen speaking
    binary (flipped by the receive path).  The write lock makes each
    frame atomic on the wire even when several streams — remote stdout,
    stderr, and the exit frame — share the transport.
    """

    def __init__(self, input_stream: Optional[InputStream] = None,
                 output_stream: Optional[OutputStream] = None,
                 binary: bool = False):
        self.input: Optional[BufferedInputStream] = \
            ensure_buffered(input_stream) if input_stream is not None \
            else None
        if output_stream is None:
            self.output: Optional[BufferedOutputStream] = None
        elif isinstance(output_stream, BufferedOutputStream):
            self.output = output_stream
        else:
            self.output = BufferedOutputStream(output_stream)
        self.binary = binary
        self.peer_binary = False
        self.closed = False
        self._lock = threading.RLock()

    # -- sending ---------------------------------------------------------------

    def send(self, frame: dict, flush: bool = True) -> None:
        with self._lock:
            if self.binary:
                send_binary_frame(self.output, frame)
            else:
                send_frame(self.output, frame)
            if flush:
                self.output.flush()

    def send_many(self, frames, flush: bool = True) -> None:
        """Encode all ``frames`` and ship them as one gather-write.

        The vectored send path: a burst of N frames (a coalesced stdout
        backlog, an AWT paint storm) costs one ``writev`` on the
        buffered output — and therefore at most one downstream pipe
        lock session — instead of N ``send()`` round trips through the
        channel lock and the sink.  Frame atomicity and ordering match
        N sequential sends exactly.
        """
        frames = list(frames)
        if not frames:
            return
        with self._lock:
            if self.binary:
                encoded = [encode_binary_frame(frame) for frame in frames]
            else:
                encoded = [
                    (json.dumps(frame, separators=(",", ":")) + "\n")
                    .encode("utf-8")
                    for frame in frames]
            self.output.writev(encoded)
            for frame, blob in zip(frames, encoded):
                _count_sent(str(frame.get("t", "req")), len(blob))
            current_hub().metrics.counter(
                "dist.frames.vectored").inc(len(frames))
            if flush:
                self.output.flush()

    def send_data(self, kind: str, payload: bytes,
                  flush: bool = True) -> None:
        """One stdout/stderr data frame carrying exactly ``payload``.

        Binary mode ships the raw bytes.  JSON mode ships UTF-8 text —
        with a base64 ``"b"`` escape alongside when the bytes are not
        valid UTF-8, so new peers round-trip what old peers merely
        display.
        """
        if self.binary:
            self.send({"t": kind, "d": payload}, flush=flush)
            return
        try:
            frame: dict = {"t": kind, "d": payload.decode("utf-8")}
        except UnicodeDecodeError:
            frame = {"t": kind,
                     "d": payload.decode("utf-8", errors="replace"),
                     "b": base64.b64encode(payload).decode("ascii")}
        self.send(frame, flush=flush)

    def flush(self) -> None:
        with self._lock:
            if self.output is not None:
                self.output.flush()

    # -- receiving -------------------------------------------------------------

    def recv(self) -> Optional[dict]:
        frame = recv_frame_auto(self.input)
        if frame is not None and frame.pop("_binary", False):
            self.peer_binary = True
        return frame

    # -- health and teardown ---------------------------------------------------

    def healthy(self) -> bool:
        """Best-effort, non-blocking liveness probe for pooled reuse."""
        if self.closed:
            return False
        if self.input is not None and self.input.at_eof_hint():
            return False
        if self.output is not None and self.output.reader_gone_hint():
            return False
        return True

    def close(self) -> None:
        with self._lock:
            if self.closed:
                return
            self.closed = True
        for stream in (self.output, self.input):
            if stream is not None:
                try:
                    stream.close()
                except IOException:
                    pass


# --------------------------------------------------------------------------
# FrameOutputStream — remote stdout/stderr with write coalescing
# --------------------------------------------------------------------------

class FrameOutputStream(OutputStream):
    """An OutputStream whose writes become ``o``/``e`` data frames.

    Handed to the remote application as its stdout/stderr: everything it
    prints travels back to the requesting JVM.  Small writes coalesce
    into one frame, emitted when the buffered data contains a newline,
    reaches ``coalesce_bytes``, or has been sitting for longer than
    ``max_latency`` — so chatty byte-at-a-time writers cost one frame
    per line, not one frame per write, while interactive output still
    appears promptly.
    """

    def __init__(self, transport: Union[FrameChannel, OutputStream],
                 kind: str = "o",
                 coalesce_bytes: int = COALESCE_THRESHOLD,
                 max_latency: float = COALESCE_MAX_LATENCY):
        super().__init__()
        if isinstance(transport, FrameChannel):
            self._channel = transport
        else:
            self._channel = FrameChannel(None, transport)
        self._kind = kind
        self._coalesce_bytes = coalesce_bytes
        self._max_latency = max_latency
        self._buffer = bytearray()
        self._writes_in_buffer = 0
        self._first_write_at = 0.0
        self._lock = threading.RLock()

    @property
    def channel(self) -> FrameChannel:
        return self._channel

    def _emit(self, flush_transport: bool) -> None:
        """Ship the coalesced buffer as one frame (lock held)."""
        if not self._buffer:
            if flush_transport:
                self._channel.flush()
            return
        if self._writes_in_buffer > 1:
            current_hub().metrics.counter("dist.frames.coalesced").inc(
                self._writes_in_buffer - 1)
        payload = bytes(self._buffer)
        del self._buffer[:]
        self._writes_in_buffer = 0
        self._channel.send_data(self._kind, payload, flush=flush_transport)

    def write(self, payload: bytes) -> None:
        self._ensure_open()
        if isinstance(payload, str):  # PrintStream hands us bytes; be lenient
            payload = payload.encode("utf-8")
        with self._lock:
            now = time.monotonic()
            if not self._buffer:
                self._first_write_at = now
            self._buffer.extend(payload)
            self._writes_in_buffer += 1
            if (b"\n" in payload
                    or len(self._buffer) >= self._coalesce_bytes
                    or now - self._first_write_at >= self._max_latency):
                self._emit(flush_transport=True)

    def flush(self) -> None:
        with self._lock:
            self._emit(flush_transport=True)

    def _close_impl(self) -> None:
        # The transport is shared with the exit frame; flush what we
        # buffered but never close the channel here.
        with self._lock:
            try:
                self._emit(flush_transport=True)
            except IOException:
                pass
