"""The ``rsh`` tool: run a command on another JVM (Section 8).

Usage::

    rsh [-l user] [-p password] [-P port] host class-or-command [args...]

Defaults: the running user's name, the application property
``rsh.password`` (set with the shell's ``setprop``), port 7100.  Command
names are resolved through the local tool path, so ``rsh hostB whoami``
works like the local ``whoami`` — but over there.
"""

from __future__ import annotations

from repro.dist.client import RemoteApplication
from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import (
    NodeUnavailableException,
    RemoteException,
    SecurityException,
)
from repro.security.codesource import CodeSource

CLASS_NAME = "tools.Rsh"
CODE_SOURCE = CodeSource("file:/usr/local/java/tools/rsh/Rsh.class")


def build_material() -> ClassMaterial:
    material = ClassMaterial(
        CLASS_NAME, code_source=CODE_SOURCE,
        doc="Run an application on a remote JVM (§8 future work).")

    @material.member
    def main(jclass, ctx, args):
        user = ctx.user.name if ctx.user is not None else ""
        password = ctx.app.properties.get_property("rsh.password", "") \
            if ctx.app is not None else ""
        port = 7100
        rest = list(args)
        while rest and rest[0].startswith("-"):
            flag = rest.pop(0)
            if flag == "-l" and rest:
                user = rest.pop(0)
            elif flag == "-p" and rest:
                password = rest.pop(0)
            elif flag == "-P" and rest:
                port = int(rest.pop(0))
            else:
                ctx.stderr.println(f"rsh: unknown option {flag}")
                return 2
        if len(rest) < 2:
            ctx.stderr.println(
                "usage: rsh [-l user] [-p password] [-P port] host "
                "command [args...]")
            return 2
        host, command, *command_args = rest
        class_name = ctx.vm.tool_path.get(command,
                                          command if "." in command
                                          else None)
        if class_name is None:
            class_name = command
        try:
            # rsh asserts its own connect grant (its launcher — typically
            # a shell — is on the inherited context and has none).
            from repro.security import access
            remote = access.do_privileged(lambda: RemoteApplication(
                ctx, host, port, user, password, class_name,
                command_args, stdout=ctx.stdout, stderr=ctx.stderr))
        except (SecurityException, NodeUnavailableException) as exc:
            ctx.stderr.println(f"rsh: {exc}")
            return 1
        try:
            code = remote.wait_for(30)
        except RemoteException as exc:
            ctx.stderr.println(f"rsh: {exc}")
            return 1
        finally:
            remote.close()
        return code if code is not None else 1

    return material
