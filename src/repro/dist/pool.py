"""Keyed connection pool for the dist/cluster fabric.

Protocol 2 daemons keep a connection open after the exit frame, so the
next ``remote_exec`` / ``Cluster.exec`` / heartbeat to the same
``host:port`` can skip connection establishment entirely.  The pool is
per-VM (``vm.dist_pool``) and keyed by ``(host, port)``.

Security and ownership semantics are deliberately unchanged:

* **Every** acquire — pool hit or miss — runs the security manager's
  ``checkConnect``, exactly as opening a fresh :class:`~repro.net.sockets.
  Socket` would.  A pooled channel never launders another application's
  connect permission.
* Pooled channels are VM infrastructure, not application streams: they
  carry no owner and are not registered against the acquiring
  application's stream table, so an application exiting does not tear
  down connections the pool may hand to someone else.  (The non-pooled
  path in :mod:`repro.dist.client` keeps the old per-application
  ownership.)

Invalidation is the failure-semantics glue: a ``transport_lost`` on any
channel to a node, or the cluster registry declaring the node dead,
drops every idle channel for that key (``dist.pool.evicted``), so
retry/re-placement never dials a corpse twice.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

from repro.dist.protocol import FrameChannel
from repro.jvm.errors import IllegalStateException
from repro.super import faults

#: Idle channels kept per (host, port) key; the rest are closed on release.
MAX_IDLE_PER_KEY = 4


class PooledChannel:
    """One connection checked out of (or destined for) the pool."""

    def __init__(self, pool: Optional["ChannelPool"], host: str, port: int,
                 endpoint, channel: FrameChannel, reused: bool):
        self._pool = pool
        self.host = host
        self.port = port
        self.endpoint = endpoint
        self.channel = channel
        #: True when this channel came out of the idle set (a pool hit).
        self.reused = reused
        self.uses = 1

    def release(self) -> None:
        """Return the connection for reuse (or close it, pool's choice)."""
        if self._pool is not None:
            self._pool.release(self)
        else:
            self.close()

    def close(self) -> None:
        self.channel.close()
        try:
            self.endpoint.close()
        except Exception:  # noqa: BLE001 - teardown is best-effort
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PooledChannel({self.host}:{self.port}, "
                f"reused={self.reused}, uses={self.uses})")


class ChannelPool:
    """``(host, port)`` → reusable framed channels, per VM."""

    def __init__(self, vm, max_idle_per_key: int = MAX_IDLE_PER_KEY):
        self.vm = vm
        self.metrics = vm.telemetry.metrics
        self.max_idle_per_key = max_idle_per_key
        self._idle: dict[tuple[str, int], deque[PooledChannel]] = {}
        self._lock = threading.Lock()
        # Cumulative totals mirrored into metrics; kept here too so
        # /proc/dist/transport can render without scanning time series.
        self.hits = 0
        self.misses = 0
        self.evicted = 0
        self.released = 0

    # -- checkout --------------------------------------------------------------

    def acquire(self, ctx, host: str, port: int,
                fresh: bool = False) -> PooledChannel:
        """A healthy channel to ``host:port`` — pooled if possible.

        Runs ``checkConnect`` unconditionally; raises the same
        :class:`~repro.jvm.errors.UnknownHostException` /
        :class:`~repro.jvm.errors.ConnectException` a fresh socket would.
        ``fresh=True`` skips the idle set (a caller retrying after a
        pooled channel turned out to be stale mid-send).
        """
        sm = ctx.vm.security_manager
        if sm is not None:
            sm.check_connect(host, port)
        # Fault point: "the next acquire to this host fails/stalls" —
        # free when no injector is installed.
        faults.hit(faults.POINT_DIST_ACQUIRE, host=host, port=port)
        key = (host, port)
        if not fresh:
            while True:
                with self._lock:
                    idle = self._idle.get(key)
                    pooled = idle.popleft() if idle else None
                    if idle is not None and not idle:
                        del self._idle[key]
                if pooled is None:
                    break
                if pooled.channel.healthy():
                    self.hits += 1
                    self.metrics.counter("dist.pool.hit").inc()
                    pooled.uses += 1
                    pooled.reused = True
                    return pooled
                self._evict(pooled)
        self.misses += 1
        self.metrics.counter("dist.pool.miss").inc()
        return self._connect(ctx, host, port)

    def _connect(self, ctx, host: str, port: int) -> PooledChannel:
        fabric = ctx.vm.network
        if fabric is None:
            raise IllegalStateException("this VM has no network attached")
        endpoint = fabric.connect(ctx.vm.machine.hostname, host, port)
        channel = FrameChannel(endpoint.input, endpoint.output)
        return PooledChannel(self, host, port, endpoint, channel,
                             reused=False)

    # -- checkin ---------------------------------------------------------------

    def release(self, pooled: PooledChannel) -> None:
        if not pooled.channel.healthy():
            self._evict(pooled)
            return
        key = (pooled.host, pooled.port)
        with self._lock:
            idle = self._idle.setdefault(key, deque())
            if len(idle) >= self.max_idle_per_key:
                overflow = True
            else:
                idle.append(pooled)
                overflow = False
        if overflow:
            self._evict(pooled)
        else:
            self.released += 1
            self.metrics.counter("dist.pool.released").inc()

    def _evict(self, pooled: PooledChannel) -> None:
        self.evicted += 1
        self.metrics.counter("dist.pool.evicted").inc()
        pooled.close()

    # -- invalidation ----------------------------------------------------------

    def invalidate(self, host: str, port: Optional[int] = None) -> int:
        """Drop every idle channel to ``host`` (``:port`` if given).

        Called on ``transport_lost`` and on cluster node death, so a
        failing node's pooled connections never serve another launch.
        Returns how many channels were dropped.
        """
        dropped: list[PooledChannel] = []
        with self._lock:
            for key in list(self._idle):
                if key[0] == host and (port is None or key[1] == port):
                    dropped.extend(self._idle.pop(key))
        for pooled in dropped:
            self._evict(pooled)
        return len(dropped)

    # -- introspection ---------------------------------------------------------

    def idle_counts(self) -> dict[str, int]:
        with self._lock:
            return {f"{host}:{port}": len(idle)
                    for (host, port), idle in sorted(self._idle.items())}

    def stats(self) -> dict:
        with self._lock:
            idle_total = sum(len(d) for d in self._idle.values())
        return {"hits": self.hits, "misses": self.misses,
                "evicted": self.evicted, "released": self.released,
                "idle": idle_total}


def pool_for(vm) -> ChannelPool:
    """The VM's channel pool, created on first use."""
    pool = vm.dist_pool
    if pool is None:
        pool = vm.dist_pool = ChannelPool(vm)
    return pool


def existing_pool(vm) -> Optional[ChannelPool]:
    """The VM's pool if one has ever been created (procfs reads this)."""
    return getattr(vm, "dist_pool", None)
