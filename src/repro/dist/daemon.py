"""The remote-execution daemon: applications spanning JVMs (Section 8).

    "it is conceivable that the notion of an application as a set of
    threads can be extended to include threads of other JVM's, possibly on
    other hosts."

``dist.RexecDaemon`` is an ordinary application (Section 5.1) that listens
on a port of its VM's host.  For each connection it:

1. authenticates the request against *its own* VM's user database
   (Section 5.2 — identity does not travel, credentials do);
2. launches the requested class as a child application running as the
   authenticated user — the remote half of a distributed application;
3. streams the child's stdout/stderr back as frames and reports the exit
   code;
4. honours ``kill`` control frames from the requesting side, so destroying
   the distributed application reaches its remote threads.

Privileges: the daemon's code source is granted ``listen``/``accept`` on
its rexec port range plus ``setUser`` (it launches work as other users) —
exactly the login-program pattern: the *program* holds the privilege, not
the user running it.
"""

from __future__ import annotations

from repro.core.application import Application
from repro.core.execspec import ExecSpec
from repro.dist import protocol
from repro.super.admission import AdmissionRejected
from repro.io.streams import PrintStream
from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import (
    AuthenticationException,
    ClassNotFoundException,
    IOException,
    JavaThrowable,
    SocketException,
)
from repro.jvm.threads import JThread, checkpoint
from repro.net.sockets import ServerSocket
from repro.security import access
from repro.security.codesource import CodeSource
from repro.security.policy import PHASES

CLASS_NAME = "dist.RexecDaemon"
CODE_SOURCE = CodeSource("file:/usr/local/java/tools/rexecd/RexecDaemon.class")

DEFAULT_PORT = 7100


def _serve_request(ctx, channel, request, on_done=None):
    """Authenticate and launch one request.

    Returns ``(child, waiter)`` — the waiter thread streams the exit
    frame when the child ends, then runs ``on_done`` — or
    ``(None, None)`` when an ``err`` frame was sent instead.
    """
    try:
        user = ctx.vm.user_database.authenticate(
            str(request.get("user", "")), str(request.get("password", "")))
    except AuthenticationException:
        channel.send({"t": "err", "msg": "authentication failed"})
        return None, None
    class_name = str(request.get("class_name", ""))
    args = [str(a) for a in request.get("args", [])]
    # ResourceLimits travel with the request and are enforced *here*, on
    # the executing VM — the client's ceilings survive the network.
    limits = protocol.limits_from_wire(request.get("limits"))
    # Learning mode and a launch-phase override ride along the same way.
    # Junk phases from untrusted requesters are dropped, not fatal.
    record = bool(request.get("record", False))
    phase = request.get("phase")
    if phase is not None and str(phase) not in PHASES:
        phase = None
    # Coalescing frame streams: auto-flush stays off so byte-at-a-time
    # writers pay one frame per newline/threshold, not one per write.
    out_frames = protocol.FrameOutputStream(channel, "o")
    err_frames = protocol.FrameOutputStream(channel, "e")
    stdout = PrintStream(out_frames, auto_flush=False)
    stderr = PrintStream(err_frames, auto_flush=False)
    spec = ExecSpec(class_name, tuple(args), user=user, stdout=stdout,
                    stderr=stderr, limits=limits,
                    record_policy=record, phase=phase)
    try:
        # The daemon asserts its own setUser grant to launch as `user`.
        child = access.do_privileged(lambda: Application._exec_spec(
            spec, vm=ctx.vm, parent=ctx.app))
    except AdmissionRejected as exc:
        # Typed shedding crosses the wire: the requester re-raises it as
        # AdmissionRejected, not a generic RemoteException.
        channel.send({"t": "err", "kind": "admission",
                      "msg": f"admission rejected: {exc}"})
        return None, None
    except (ClassNotFoundException, JavaThrowable) as exc:
        channel.send({"t": "err", "msg": f"launch failed: {exc}"})
        return None, None

    def wait_and_report() -> None:
        code = child.wait_for()
        # Residual coalesced output must hit the wire before the exit
        # frame: on a persistent connection, anything later would bleed
        # into the next request's reply stream.
        try:
            out_frames.flush()
            err_frames.flush()
            channel.send({"t": "x",
                          "code": code if code is not None else -1})
        except IOException:
            pass  # requester hung up; nothing left to report to
        if on_done is not None:
            on_done()

    waiter = JThread(target=wait_and_report,
                     name=f"rexec-wait-{child.app_id}", daemon=True)
    waiter.start()
    return child, waiter


def _handle_connection(ctx, socket) -> None:
    """Serve one connection: one request (protocol 1) or many (protocol 2).

    A single reader loop handles everything the requester sends — the
    request frame, ``kill`` control frames while a child runs, and (for
    protocol-2 peers, which see binary replies and pool the connection)
    the *next* request after an exit frame.  Requests are always JSON
    lines; ``"proto": 2`` in a request switches replies to binary
    framing and keeps the connection open after the exit frame.
    """
    channel = protocol.FrameChannel(socket.input, socket.output)
    child = None
    waiter = None
    persistent = False
    try:
        while True:
            try:
                frame = channel.recv()
            except IOException:
                break
            if frame is None:
                break
            kind = frame.get("t")
            if kind == "kill":
                if child is not None:
                    child.destroy()
                continue
            if kind is not None:
                continue  # unknown control frame: ignore, stay compatible
            # A request frame.  The client only sends one after seeing the
            # previous exit frame, so a live waiter just needs joining.
            if waiter is not None:
                waiter.join()
                child = waiter = None
            persistent = int(frame.get("proto", 1)) >= 2
            channel.binary = persistent
            # Legacy peers get one request per connection: the waiter
            # hangs up right after the exit frame (the old daemon's
            # lifecycle), while this loop keeps draining kill frames.
            child, waiter = _serve_request(
                ctx, channel, frame,
                on_done=None if persistent else socket.close)
            if not persistent and child is None:
                break  # err frame sent; close as before
    finally:
        if waiter is not None:
            waiter.join()
        socket.close()


def build_material() -> ClassMaterial:
    material = ClassMaterial(
        CLASS_NAME, code_source=CODE_SOURCE,
        doc="Remote-execution daemon: the remote half of distributed "
            "applications (§8 future work).")

    @material.member
    def main(jclass, ctx, args):
        port = int(args[0]) if args else DEFAULT_PORT
        server = access.do_privileged(lambda: ServerSocket(ctx, port))
        ctx.stdout.println(f"rexecd: listening on port {port}")
        try:
            while True:
                checkpoint()
                try:
                    socket = server.accept(timeout=0.2)
                except SocketException:
                    continue  # accept timeout: poll the stop flag
                handler = JThread(
                    target=lambda s=socket: _handle_connection(ctx, s),
                    name=f"rexec-conn")
                handler.start()
        finally:
            server.close()

    return material
