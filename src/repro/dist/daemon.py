"""The remote-execution daemon: applications spanning JVMs (Section 8).

    "it is conceivable that the notion of an application as a set of
    threads can be extended to include threads of other JVM's, possibly on
    other hosts."

``dist.RexecDaemon`` is an ordinary application (Section 5.1) that listens
on a port of its VM's host.  For each connection it:

1. authenticates the request against *its own* VM's user database
   (Section 5.2 — identity does not travel, credentials do);
2. launches the requested class as a child application running as the
   authenticated user — the remote half of a distributed application;
3. streams the child's stdout/stderr back as frames and reports the exit
   code;
4. honours ``kill`` control frames from the requesting side, so destroying
   the distributed application reaches its remote threads.

Privileges: the daemon's code source is granted ``listen``/``accept`` on
its rexec port range plus ``setUser`` (it launches work as other users) —
exactly the login-program pattern: the *program* holds the privilege, not
the user running it.
"""

from __future__ import annotations

from repro.core.application import Application
from repro.dist import protocol
from repro.io.streams import PrintStream
from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import (
    AuthenticationException,
    ClassNotFoundException,
    IOException,
    JavaThrowable,
    SocketException,
)
from repro.jvm.threads import JThread, checkpoint
from repro.net.sockets import ServerSocket
from repro.security import access
from repro.security.codesource import CodeSource

CLASS_NAME = "dist.RexecDaemon"
CODE_SOURCE = CodeSource("file:/usr/local/java/tools/rexecd/RexecDaemon.class")

DEFAULT_PORT = 7100


def _handle_connection(ctx, socket) -> None:
    """Serve one rexec request (runs in its own thread)."""
    try:
        request = protocol.recv_frame(socket.input)
    except IOException:
        request = None
    if request is None:
        socket.close()
        return
    try:
        user = ctx.vm.user_database.authenticate(
            str(request.get("user", "")), str(request.get("password", "")))
    except AuthenticationException:
        protocol.send_frame(socket.output,
                            {"t": "err", "msg": "authentication failed"})
        socket.close()
        return
    class_name = str(request.get("class_name", ""))
    args = [str(a) for a in request.get("args", [])]
    stdout = PrintStream(protocol.FrameOutputStream(socket.output, "o"))
    stderr = PrintStream(protocol.FrameOutputStream(socket.output, "e"))
    try:
        # The daemon asserts its own setUser grant to launch as `user`.
        child = access.do_privileged(lambda: Application.exec(
            class_name, args, vm=ctx.vm, parent=ctx.app, user=user,
            stdout=stdout, stderr=stderr))
    except (ClassNotFoundException, JavaThrowable) as exc:
        protocol.send_frame(socket.output,
                            {"t": "err", "msg": f"launch failed: {exc}"})
        socket.close()
        return

    def control_reader() -> None:
        """Process kill frames from the requesting JVM."""
        while True:
            try:
                frame = protocol.recv_frame(socket.input)
            except IOException:
                frame = None
            if frame is None:
                return
            if frame.get("t") == "kill":
                child.destroy()

    JThread(target=control_reader,
            name=f"rexec-control-{child.app_id}", daemon=True).start()
    code = child.wait_for()
    protocol.send_frame(socket.output,
                        {"t": "x", "code": code if code is not None
                         else -1})
    socket.close()


def build_material() -> ClassMaterial:
    material = ClassMaterial(
        CLASS_NAME, code_source=CODE_SOURCE,
        doc="Remote-execution daemon: the remote half of distributed "
            "applications (§8 future work).")

    @material.member
    def main(jclass, ctx, args):
        port = int(args[0]) if args else DEFAULT_PORT
        server = access.do_privileged(lambda: ServerSocket(ctx, port))
        ctx.stdout.println(f"rexecd: listening on port {port}")
        try:
            while True:
                checkpoint()
                try:
                    socket = server.accept(timeout=0.2)
                except SocketException:
                    continue  # accept timeout: poll the stop flag
                handler = JThread(
                    target=lambda s=socket: _handle_connection(ctx, s),
                    name=f"rexec-conn")
                handler.start()
        finally:
            server.close()

    return material
