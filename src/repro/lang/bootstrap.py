"""Registers the boot-class-path class material on a fresh VM registry."""

from __future__ import annotations

from repro.jvm.classloading import ClassRegistry
from repro.lang import system, sysprops


def register_core_classes(registry: ClassRegistry) -> None:
    """Idempotently register ``System`` and ``SystemProperties`` material.

    Both are registered without a code source, i.e. as fully trusted boot
    class-path code; only ``System`` appears in the reloadable set of
    Section 5.5 (see :mod:`repro.core.reload`).
    """
    if sysprops.CLASS_NAME not in registry:
        registry.register(sysprops.build_material())
    if system.CLASS_NAME not in registry:
        registry.register(system.build_material())
