"""The ``System`` class — the paper's canonical *reloadable* class.

Section 3.1: when the System class is loaded, "three streams are created
that point to standard input, standard output and error file descriptors of
the JVM process", and the system properties are initialized.  Section 5.5
then makes System the per-application class: every application class loader
re-defines it "albeit from the same class material", so each application
gets its own ``in``/``out``/``err`` statics and its own application
security-manager slot, while the property data lives in the *shared*
``SystemProperties`` class (Figure 5).

Two pieces live here:

* :func:`build_material` — the class material (registered on the boot class
  path by :mod:`repro.lang.bootstrap`).
* :class:`SystemFacade` — the typed Python face over a ``System``
  :class:`~repro.jvm.classloading.JClass`; this is what application code
  reaches through ``ctx.system``.  All mutating operations consult the
  *system* security manager, reproducing the paper's observation that
  application security managers "will never be consulted by system code".
"""

from __future__ import annotations

import time
from typing import Optional

from repro.jvm.classloading import ClassMaterial, JClass
from repro.lang import sysprops
from repro.lang.properties import Properties

CLASS_NAME = "java.lang.System"


def build_material() -> ClassMaterial:
    material = ClassMaterial(
        CLASS_NAME,
        doc="Standard streams, properties facade, exit, security manager.")

    @material.static
    def _static_init(jclass: JClass) -> None:
        vm = jclass.loader.vm
        # Section 3.1: the three streams point at the JVM process's
        # descriptors.  In the multi-processing VM the application layer
        # immediately re-points them at the application's inherited streams.
        jclass.statics["in"] = vm.stdin
        jclass.statics["out"] = vm.out
        jclass.statics["err"] = vm.err
        # Section 5.6: the (per-application) security-manager reference is
        # *stored in the System class*, which is why reloading System gives
        # each application its own slot.
        jclass.statics["security_manager"] = None
        # Section 5.5 / Figure 5: properties are reached *through* System
        # but live in the shared SystemProperties class.
        jclass.statics["sysprops_class"] = jclass.loader.load_class(
            sysprops.CLASS_NAME)

    return material


class SystemFacade:
    """Application-facing view of one ``System`` class definition.

    ``ctx.system`` hands application code an instance of this facade bound
    to the ``System`` class *as seen through the application's loader* —
    i.e. the application's own copy in the multi-processing VM, or the
    single shared copy in a plain VM.
    """

    def __init__(self, jclass: JClass, app=None):
        if jclass.name != CLASS_NAME:
            raise ValueError(f"not a System class: {jclass.name}")
        self._jclass = jclass
        self._app = app
        self._vm = jclass.loader.vm

    @property
    def jclass(self) -> JClass:
        return self._jclass

    def _system_sm(self):
        return self._vm.security_manager

    # -- standard streams (application state, Section 5.5) ---------------------

    @property
    def stdin(self):
        return self._jclass.statics["in"]

    @property
    def out(self):
        return self._jclass.statics["out"]

    @property
    def err(self):
        return self._jclass.statics["err"]

    def set_in(self, stream) -> None:
        self._check_set_io()
        self._jclass.statics["in"] = stream

    def set_out(self, stream) -> None:
        self._check_set_io()
        self._jclass.statics["out"] = stream

    def set_err(self, stream) -> None:
        self._check_set_io()
        self._jclass.statics["err"] = stream

    def _check_set_io(self) -> None:
        sm = self._system_sm()
        if sm is not None:
            sm.check_set_io()

    # -- properties (JVM-wide state, Section 5.5 / Figure 5) --------------------

    def _shared_properties(self) -> Properties:
        return sysprops.properties_of(self._jclass.statics["sysprops_class"])

    def get_property(self, key: str,
                     default: Optional[str] = None) -> Optional[str]:
        sm = self._system_sm()
        if sm is not None:
            sm.check_property_access(key)
        return self._shared_properties().get_property(key, default)

    def set_property(self, key: str, value: str) -> Optional[str]:
        sm = self._system_sm()
        if sm is not None:
            sm.check_property_access(key, write=True)
        return self._shared_properties().set_property(key, value)

    def get_properties(self) -> Properties:
        """The shared properties object (API unchanged, per Section 5.5)."""
        sm = self._system_sm()
        if sm is not None:
            sm.check_properties_access()
        return self._shared_properties()

    # -- security manager (application-wide, Section 5.6) ------------------------

    def get_security_manager(self):
        return self._jclass.statics["security_manager"]

    def set_security_manager(self, manager) -> None:
        """Install *this application's* security manager.

        The paper: "applications in theory can still set their own security
        managers.  However, those security managers will never be consulted
        by system code, because the system code ... sees its own version of
        the System class that holds the system security manager."
        """
        self._jclass.statics["security_manager"] = manager

    # -- exit -----------------------------------------------------------------

    def exit(self, status: int = 0) -> None:
        """``System.exit`` with the paper's two possible semantics.

        Historically this exits the whole VM (what forced the Appletviewer
        port to replace its calls, Section 6.3).  With
        ``vm.system_exit_exits_application`` enabled — the paper's proposed
        change — it only exits the calling application.
        """
        vm = self._vm
        if vm.system_exit_exits_application and self._app is not None:
            from repro.core.application import Application
            Application.exit(status)
            return
        vm.exit(status)

    # -- clock ------------------------------------------------------------------

    @staticmethod
    def current_time_millis() -> int:
        return int(time.time() * 1000)

    @staticmethod
    def nano_time() -> int:
        return time.perf_counter_ns()

    def line_separator(self) -> str:
        return self._shared_properties().get_property("line.separator", "\n")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        loader = self._jclass.loader.name
        return f"SystemFacade(loader={loader!r})"
