"""Invocation contexts: the environment handed to running Java code.

In real Java, a class reaches its environment through static state —
``System.out``, ``System.getProperties()`` — resolved through the class's
own loader.  Our class material is made of plain Python functions, so the
invoker passes an explicit :class:`InvocationContext` instead: it resolves
``System`` *through the running class's loader*, which is exactly the
mechanism that makes Section 5.5's per-application System copies work.
"""

from __future__ import annotations

from typing import Optional

from repro.jvm.classloading import ClassLoader, JClass
from repro.jvm.errors import IllegalStateException
from repro.lang import system as system_mod
from repro.lang.system import SystemFacade


class InvocationContext:
    """Execution environment for one running class.

    Attributes
    ----------
    vm:      the :class:`~repro.jvm.vm.VirtualMachine`.
    loader:  the class loader whose name space the code runs in.
    jclass:  the class being executed (may be None for host-driven calls).
    app:     the owning :class:`~repro.core.application.Application`, or
             None when running in plain single-application mode.
    """

    def __init__(self, vm, loader: ClassLoader,
                 jclass: Optional[JClass] = None, app=None):
        self.vm = vm
        self.loader = loader
        self.jclass = jclass
        self.app = app
        self._system: Optional[SystemFacade] = None

    @property
    def system(self) -> SystemFacade:
        """``System`` as seen through this context's loader (Section 5.5)."""
        if self._system is None:
            jclass = self.loader.load_class(system_mod.CLASS_NAME)
            self._system = SystemFacade(jclass, app=self.app)
        return self._system

    # -- stream shortcuts ------------------------------------------------------

    @property
    def stdin(self):
        return self.system.stdin

    @property
    def stdout(self):
        return self.system.out

    @property
    def stderr(self):
        return self.system.err

    # -- environment -----------------------------------------------------------

    @property
    def cwd(self) -> str:
        """Current working directory (application state, Section 5.1)."""
        if self.app is not None:
            return self.app.cwd
        return self.vm.os_context.cwd

    @property
    def user(self):
        """The Java-level running user, or None outside the multi-proc VM."""
        if self.app is not None:
            return self.app.user
        return None

    def load_class(self, name: str) -> JClass:
        return self.loader.load_class(name)

    def for_class(self, jclass: JClass) -> "InvocationContext":
        """Derive a context for invoking another class in the same app."""
        context = InvocationContext(self.vm, jclass.loader, jclass, self.app)
        return context

    # -- multi-processing conveniences ---------------------------------------------

    def exec(self, class_name: str, args=None, **kwargs):
        """Launch a child application (Section 5.1's ``Application.exec``)."""
        if self.app is None:
            raise IllegalStateException(
                "exec requires the multi-processing VM (no current app)")
        from repro.core.application import Application
        from repro.core.execspec import ExecSpec
        return Application._exec_spec(
            ExecSpec(class_name, tuple(args or ()), **kwargs), vm=self.vm)

    def launch(self, spec):
        """Launch an :class:`~repro.core.execspec.ExecSpec` from in-app
        code — the unified entry point, placement hints included."""
        from repro.core.execspec import launch as launch_spec
        return launch_spec(spec, vm=self.vm, ctx=self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        app = self.app.name if self.app is not None else None
        cls = self.jclass.name if self.jclass is not None else None
        return f"InvocationContext(class={cls!r}, app={app!r})"
