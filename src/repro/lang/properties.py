"""``java.util.Properties``: string-valued tables with a defaults chain.

Section 3.1: "so called *properties* are initialized.  These are values that
provide information about the 'system', for example the running user, the
Java version, the underlying O/S version."  Section 5.1 additionally gives
every application "a set of properties" as application-wide state, copied
from the parent at creation — which the defaults chain plus :meth:`copy`
support directly.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

from repro.jvm.errors import IllegalArgumentException


class Properties:
    """A thread-safe string-to-string table with optional defaults."""

    def __init__(self, defaults: Optional["Properties"] = None):
        self._values: dict[str, str] = {}
        self._defaults = defaults
        self._lock = threading.RLock()

    def get_property(self, key: str,
                     default: Optional[str] = None) -> Optional[str]:
        with self._lock:
            if key in self._values:
                return self._values[key]
        if self._defaults is not None:
            value = self._defaults.get_property(key)
            if value is not None:
                return value
        return default

    def set_property(self, key: str, value: str) -> Optional[str]:
        """Set ``key``; returns the previous local value (or None)."""
        if not isinstance(key, str) or not isinstance(value, str):
            raise IllegalArgumentException(
                "property keys and values must be strings")
        with self._lock:
            previous = self._values.get(key)
            self._values[key] = value
            return previous

    def remove_property(self, key: str) -> Optional[str]:
        with self._lock:
            return self._values.pop(key, None)

    def property_names(self) -> list[str]:
        """All keys visible through this table, including defaults."""
        names = set()
        if self._defaults is not None:
            names.update(self._defaults.property_names())
        with self._lock:
            names.update(self._values)
        return sorted(names)

    def copy(self) -> "Properties":
        """Flat snapshot copy (defaults folded in).

        Used when a child application inherits the parent's properties
        (Section 5.1): the child gets the parent's *current* view but
        further changes do not propagate either way.
        """
        snapshot = Properties()
        for name in self.property_names():
            snapshot.set_property(name, self.get_property(name))
        return snapshot

    def __contains__(self, key: str) -> bool:
        return self.get_property(key) is not None

    def __len__(self) -> int:
        return len(self.property_names())

    def __iter__(self) -> Iterator[str]:
        return iter(self.property_names())

    # -- load/store in the classic key=value format ---------------------------

    def store(self) -> str:
        """Serialize local entries as ``key=value`` lines."""
        with self._lock:
            lines = [f"{key}={self._values[key]}"
                     for key in sorted(self._values)]
        return "\n".join(lines) + ("\n" if lines else "")

    def load(self, text: str) -> None:
        """Parse ``key=value`` lines; ``#`` and ``!`` start comments."""
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith(("#", "!")):
                continue
            key, separator, value = line.partition("=")
            if not separator:
                key, separator, value = line.partition(":")
            if not separator:
                raise IllegalArgumentException(
                    f"malformed property line: {raw!r}")
            self.set_property(key.strip(), value.strip())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Properties({len(self)} entries)"
