"""The shared ``SystemProperties`` class of Section 5.5.

    "Note that the System class contains state in the form of the system
    properties that is truly JVM-wide.  To make sure that such system
    properties are available to all applications, we placed them in a new
    class called SystemProperties that is shared between all applications."

The class material below is registered without a code source (boot class
path) and is *not* in the reloadable set, so every application class loader
delegates to the boot loader for it — one definition, one statics dict, one
underlying :class:`~repro.lang.properties.Properties` object for the whole
VM (Figure 5).
"""

from __future__ import annotations

from repro.jvm.classloading import ClassMaterial

CLASS_NAME = "java.lang.SystemProperties"


def build_material() -> ClassMaterial:
    material = ClassMaterial(
        CLASS_NAME,
        doc="JVM-wide system properties shared between all applications.")

    @material.static
    def _static_init(jclass) -> None:
        vm = jclass.loader.vm
        jclass.statics["properties"] = vm.system_properties

    @material.member
    def get_properties(jclass):
        return jclass.statics["properties"]

    return material


def properties_of(jclass):
    """The shared Properties object held by a SystemProperties class."""
    return jclass.statics["properties"]
