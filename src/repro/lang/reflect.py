"""The Reflection API slice the paper's prototype uses.

Section 5.1: "using the Java Reflection API, the main method of class
MyClass is called" — :func:`invoke_main` is exactly that call, and it is
what ``Application.exec`` runs inside the new application's main thread.

Section 5.6 adds the reflective access rule of the system security manager:
"Public members of a class can be accessed normally through the reflection
API.  Access to non-public members needs an appropriate permission."  By
convention, members whose names start with ``_`` are non-public.
"""

from __future__ import annotations

from repro.jvm.classloading import JClass, JMethod
from repro.jvm.errors import NoSuchMethodException

MAIN_METHOD = "main"


def _security_manager(jclass: JClass):
    vm = jclass.loader.vm
    return vm.security_manager if vm is not None else None


def get_method(jclass: JClass, name: str) -> JMethod:
    """Reflectively obtain a method handle, enforcing member access rules."""
    if not jclass.has_method(name):
        raise NoSuchMethodException(f"{jclass.name}.{name}")
    sm = _security_manager(jclass)
    if sm is not None and not jclass.is_public_member(name):
        sm.check_member_access(jclass, name)
    return jclass.method(name)


def get_members(jclass: JClass, include_non_public: bool = False) -> list[str]:
    """List member names; declared (non-public) access is permission-gated."""
    public = sorted(name for name in jclass.material.members
                    if jclass.is_public_member(name))
    if not include_non_public:
        return public
    sm = _security_manager(jclass)
    if sm is not None:
        sm.check_member_access(jclass, "<declared>")
    return sorted(jclass.material.members)


def invoke(jclass: JClass, method_name: str, *args, **kwargs):
    """Reflective invocation: access check, then domain-pushing call."""
    return get_method(jclass, method_name).invoke(*args, **kwargs)


def invoke_main(jclass: JClass, ctx, args: list[str]):
    """Call ``ClassName.main(args)`` — the application entry point."""
    if not jclass.has_method(MAIN_METHOD):
        raise NoSuchMethodException(
            f"class {jclass.name} has no main method")
    return jclass.method(MAIN_METHOD).invoke(ctx, list(args))
