"""Kernel-wide telemetry: metrics, tracing, and the security audit trail.

One :class:`TelemetryHub` hangs off every
:class:`~repro.jvm.vm.VirtualMachine` (``vm.telemetry``) and bundles the
three facilities:

* :class:`~repro.telemetry.metrics.MetricsRegistry` — lock-cheap counters,
  gauges, and histograms with per-application labels;
* :class:`~repro.telemetry.trace.Tracer` — span-style structured tracing
  with monotonic timestamps, ring-buffered per application, JSONL export;
* :class:`~repro.telemetry.audit.AuditLog` — the append-only record of
  every security decision.

Layering mirrors the rest of the kernel: this package imports nothing from
``repro`` (pure leaf), and learns about applications through the
:data:`app_resolver` injection point that
:func:`repro.core.launcher.install_global_hooks` fills in with
``current_application_or_none`` — the same idiom as the access
controller's ``user_permission_resolver``.  Code that runs without a
current application (host threads, single-application VMs booted before
any launcher) falls back to the process-wide :data:`GLOBAL_HUB`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry.audit import (
    AUDIT_CAPACITY,
    AuditLog,
    JsonlStreamHook,
    KNOWN_MANAGERS,
    normalize_manager,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.trace import (
    NOOP_SPAN,
    Span,
    TraceCollector,
    Tracer,
    install_collector,
    installed_collector,
)

__all__ = [
    "AuditLog", "Counter", "Gauge", "Histogram", "JsonlStreamHook",
    "KNOWN_MANAGERS", "MetricsRegistry",
    "NOOP_SPAN", "Span", "TraceCollector", "Tracer", "TelemetryHub",
    "GLOBAL_HUB", "app_resolver", "audit_check", "current_hub",
    "install_collector", "installed_collector", "normalize_manager",
    "stack_resolver",
]

#: Injection point: returns the current Application (or None).  Installed
#: once by the multi-processing launcher; kept module-level so telemetry
#: never imports the application layer.
app_resolver: Optional[Callable[[], object]] = None

#: Injection point: returns the protection-domain names on the calling
#: thread's access-control context, for policy-learning stack capture.
#: Consulted only when the current application has ``policy_recording``
#: set, so ordinary checks never pay for a context snapshot.
stack_resolver: Optional[Callable[[], tuple]] = None


class TelemetryHub:
    """One VM's bundle of metrics + tracer + audit log."""

    def __init__(self, name: str = "vm",
                 audit_capacity: Optional[int] = None):
        self.name = name
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(name)
        self.audit = AuditLog(audit_capacity if audit_capacity is not None
                              else AUDIT_CAPACITY)
        self.audit.bind_drop_counter(
            self.metrics.counter("security.audit.dropped"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TelemetryHub({self.name!r}, metrics={len(self.metrics)}, "
                f"audit={len(self.audit)})")


#: Fallback hub for code running outside any VM-attached context.
GLOBAL_HUB = TelemetryHub("global")


def _current_application():
    resolver = app_resolver
    if resolver is None:
        return None
    return resolver()


def current_hub() -> TelemetryHub:
    """The hub of the current application's VM, else :data:`GLOBAL_HUB`."""
    application = _current_application()
    if application is not None:
        return application.vm.telemetry
    return GLOBAL_HUB


def audit_check(permission, granted: bool, manager: str,
                check: str = "checkPermission",
                domain: Optional[str] = None, vm=None) -> None:
    """Record one security decision with full attribution.

    ``permission`` may be a :class:`~repro.security.permissions.Permission`
    (the managers pass the checked object so the record carries structured
    ``ptype``/``target``/``actions`` columns for policy inference) or a
    plain string (ancestry-style grants with no permission object).

    Resolves the current application for the user / application columns;
    ``vm`` is a fallback hub source for checks made from host threads (the
    security manager passes its owning VM).  Also bumps the
    ``security.checks`` counter and — when someone is listening — emits a
    ``security.check`` trace event, which is what puts audited checks into
    exported JSONL traces.
    """
    application = _current_application()
    if application is not None:
        hub = application.vm.telemetry
        user = application.user.name
        app_id = application.app_id
        app_name = application.name
    else:
        hub = vm.telemetry if vm is not None else GLOBAL_HUB
        user = None
        app_id = None
        app_name = None
    if isinstance(permission, str):
        permission_str = permission
        ptype = target = actions = None
    else:
        permission_str = str(permission)
        ptype = type(permission).__name__
        target = permission.name
        actions = permission.actions() or None
    phase = getattr(application, "phase", None)
    stack = None
    if application is not None and getattr(application, "policy_recording",
                                           False):
        resolver = stack_resolver
        if resolver is not None:
            try:
                stack = resolver()
            except Exception:
                stack = None
    hub.audit.record(check=check, permission=permission_str,
                     granted=granted, manager=manager, domain=domain,
                     user=user, app_id=app_id, app_name=app_name,
                     ptype=ptype, target=target, actions=actions,
                     phase=phase, stack=stack)
    hub.metrics.counter("security.checks", app=app_name or "",
                        decision="grant" if granted else "deny").inc()
    tracer = hub.tracer
    if tracer.recording:
        tracer.event("security.check", app=app_name,
                     permission=permission_str, granted=granted,
                     manager=manager, user=user)
