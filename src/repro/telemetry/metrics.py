"""Lock-cheap counters, gauges, and histograms with per-application labels.

The observability layer every later performance PR measures itself against.
Design constraints, in order:

1. **Near-free on the hot path.**  Call sites cache the metric object (one
   dict lookup to obtain it, attribute bumps afterwards) and the update
   methods take no locks: under the GIL a lost increment requires a
   preemption between the load and the store of ``+=``, which is rare and
   acceptable for statistics (these are gauges of system health, not
   ledgers — the security *audit log* in :mod:`repro.telemetry.audit` is
   the reliable record).
2. **Per-application labels.**  Every metric is keyed by its name plus a
   sorted label tuple, so ``counter("limits.rejected", app="cat#3",
   limit="max_threads")`` and the same counter for another application are
   distinct time series — which is what lets ``/proc/<app-id>/metrics``
   show only the owning application's slice.
3. **Readable anywhere.**  :meth:`MetricsRegistry.snapshot` and
   :meth:`MetricsRegistry.render_text` produce stable, sorted output for
   the ``/proc`` files and the ``vmstat`` coreutil.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

#: Default histogram bucket upper bounds, in seconds (latency-oriented).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.00001, 0.0001, 0.001, 0.01, 0.1, 1.0, 10.0)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def describe(self) -> dict:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down (live threads, queue depth)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def describe(self) -> dict:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket distribution (dispatch latency, span durations)."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "total", "minimum", "maximum")
    kind = "histogram"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...],
                 bounds: Optional[Sequence[float]] = None):
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def describe(self) -> dict:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "count": self.count,
                "sum": self.total, "min": self.minimum, "max": self.maximum,
                "buckets": dict(zip([*map(str, self.bounds), "+Inf"],
                                    self.bucket_counts))}


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class MetricsRegistry:
    """All metrics of one VM, keyed by (name, sorted label items).

    ``counter``/``gauge``/``histogram`` are get-or-create and return stable
    objects, so hot call sites may cache the result and skip even the dict
    lookup.
    """

    def __init__(self):
        self._metrics: dict = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels: dict, extra=None):
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    if extra is not None:
                        metric = cls(name, key[1], extra)
                    else:
                        metric = cls(name, key[1])
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{metric.kind}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, extra=bounds)

    # -- read side -----------------------------------------------------------

    def _matching(self, match: dict) -> list:
        with self._lock:
            metrics = list(self._metrics.values())
        if not match:
            return metrics
        wanted = set(match.items())
        return [m for m in metrics if wanted.issubset(m.labels)]

    def snapshot(self, **match) -> list[dict]:
        """Describe all metrics whose labels are a superset of ``match``."""
        described = [m.describe() for m in self._matching(match)]
        described.sort(key=lambda d: (d["name"], sorted(d["labels"].items())))
        return described

    def render_text(self, **match) -> str:
        """``name{k=v,...} value`` lines, sorted — the /proc format."""
        lines = []
        for metric in self.snapshot(**match):
            label_text = ",".join(f"{k}={v}" for k, v in
                                  sorted(metric["labels"].items()))
            prefix = (f"{metric['name']}{{{label_text}}}" if label_text
                      else metric["name"])
            if metric["kind"] == "histogram":
                lines.append(f"{prefix} count={metric['count']} "
                             f"sum={_format_value(metric['sum'])} "
                             f"min={_format_value(metric['min'])} "
                             f"max={_format_value(metric['max'])}")
            else:
                lines.append(f"{prefix} {_format_value(metric['value'])}")
        return "\n".join(lines) + ("\n" if lines else "")

    def total(self, name: str, **match) -> float:
        """Sum of a counter/gauge across matching label sets (rollups)."""
        return sum(m.value for m in self._matching(match)
                   if m.name == name and m.kind in ("counter", "gauge"))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)
