"""Span-style structured event tracing with monotonic timestamps.

Spans model the kernel's interesting intervals — an ``Application.exec``,
one AWT event dispatch, a whole application lifetime — and events model
instants (an audited security check, an exit being scheduled).  Records are
plain dicts kept in bounded per-application ring buffers, exportable as
JSONL.

The cardinal rule is the *guarded fast path*: tracing is always compiled
in but :meth:`Tracer.span` returns a shared no-op object unless someone is
listening — either the tracer was enabled explicitly or a process-global
:class:`TraceCollector` is installed (the ``--trace-out`` benchmark hook,
which must see spans from every VM a benchmark boots).  The not-recording
cost is one attribute read and one ``or`` per call site.

Parent/child nesting uses a per-thread span stack, which matches how the
kernel works: a child application's ``app.exec`` span is created on the
*parent's* thread, inside the parent's ``app.main`` span — so the trace
shows exec nesting across applications.  Cross-thread intervals (the
application lifecycle, begun by the launcher thread and ended by the
reaper) use :meth:`Tracer.begin_span`, which does not touch the stack and
is ended explicitly.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Optional

#: Per-application ring capacity (records, not bytes).
RING_CAPACITY = 4096

#: Ring key for records not attributable to any application.
VM_SCOPE = "_vm"

_collector: Optional["TraceCollector"] = None


def install_collector(collector: Optional["TraceCollector"]) -> None:
    """Install (or, with None, remove) the process-global trace sink."""
    global _collector
    _collector = collector


def installed_collector() -> Optional["TraceCollector"]:
    return _collector


class TraceCollector:
    """A process-global sink capturing records from *all* tracers.

    Used by the benchmark suite's ``--trace-out`` option: one collector
    sees every VM booted during the run, then exports a single JSONL file.
    """

    def __init__(self, capacity: int = 65536):
        self.records: deque = deque(maxlen=capacity)

    def record(self, item: dict) -> None:
        self.records.append(item)

    def export_jsonl(self, target) -> int:
        """Write records to a path or file-like object; returns the count."""
        return _write_jsonl(list(self.records), target)


def _write_jsonl(records, target) -> int:
    if hasattr(target, "write"):
        for record in records:
            target.write(json.dumps(record, default=str) + "\n")
        return len(records)
    with open(target, "w", encoding="utf-8") as sink:
        return _write_jsonl(records, sink)


class _NoopSpan:
    """The shared do-nothing span handed out when nobody is recording."""

    __slots__ = ()
    span_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def end(self, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """One recorded interval; closed via ``end()`` or as a context manager."""

    __slots__ = ("_tracer", "name", "scope", "span_id", "parent_id",
                 "start_ns", "attrs", "_pushed", "_ended")

    def __init__(self, tracer: "Tracer", name: str, scope: str,
                 span_id: int, parent_id: Optional[int], attrs: dict,
                 pushed: bool):
        self._tracer = tracer
        self.name = name
        self.scope = scope
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = time.monotonic_ns()
        self.attrs = attrs
        self._pushed = pushed
        self._ended = False

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def end(self, **attrs) -> None:
        if self._ended:
            return
        self._ended = True
        if attrs:
            self.attrs.update(attrs)
        end_ns = time.monotonic_ns()
        if self._pushed:
            self._tracer._pop(self)
        record = {"kind": "span", "name": self.name, "app": self.scope,
                  "vm": self._tracer.name, "span": self.span_id,
                  "parent": self.parent_id, "ts_ns": self.start_ns,
                  "dur_ns": end_ns - self.start_ns,
                  "thread": threading.current_thread().name}
        if self.attrs:
            record.update(self.attrs)
        self._tracer._record(self.scope, record)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()
        return False


class Tracer:
    """One VM's tracer: per-application ring buffers plus the span stack."""

    def __init__(self, name: str = "vm", capacity: int = RING_CAPACITY):
        self.name = name
        self.capacity = capacity
        self.active = False
        self._rings: dict[str, deque] = {}
        self._ids = itertools.count(1)
        self._tls = threading.local()
        self._lock = threading.Lock()

    # -- recording state -------------------------------------------------------

    @property
    def recording(self) -> bool:
        return self.active or _collector is not None

    def enable(self) -> "Tracer":
        self.active = True
        return self

    def disable(self) -> None:
        self.active = False

    # -- span plumbing ---------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if span in stack:
            # Tolerate out-of-order ends: drop the span and anything above.
            del stack[stack.index(span):]

    def current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def span(self, name: str, app: Optional[str] = None,
             parent_id: Optional[int] = None, **attrs):
        """An interval on the calling thread; nests under the open span."""
        if not (self.active or _collector is not None):
            return NOOP_SPAN
        stack = self._stack()
        if parent_id is None and stack:
            parent_id = stack[-1].span_id
        span = Span(self, name, app or VM_SCOPE, next(self._ids),
                    parent_id, attrs, pushed=True)
        stack.append(span)
        return span

    def begin_span(self, name: str, app: Optional[str] = None,
                   parent_id: Optional[int] = None, **attrs):
        """An interval that may be ended on a *different* thread."""
        if not (self.active or _collector is not None):
            return NOOP_SPAN
        if parent_id is None:
            stack = self._stack()
            if stack:
                parent_id = stack[-1].span_id
        return Span(self, name, app or VM_SCOPE, next(self._ids),
                    parent_id, attrs, pushed=False)

    def event(self, name: str, app: Optional[str] = None, **attrs) -> None:
        """A point-in-time record (audited check, exit scheduled, ...)."""
        if not (self.active or _collector is not None):
            return
        scope = app or VM_SCOPE
        record = {"kind": "event", "name": name, "app": scope,
                  "vm": self.name, "parent": self.current_span_id(),
                  "ts_ns": time.monotonic_ns(),
                  "thread": threading.current_thread().name}
        if attrs:
            record.update(attrs)
        self._record(scope, record)

    # -- storage and export ----------------------------------------------------

    def _record(self, scope: str, record: dict) -> None:
        ring = self._rings.get(scope)
        if ring is None:
            with self._lock:
                ring = self._rings.setdefault(
                    scope, deque(maxlen=self.capacity))
        ring.append(record)
        collector = _collector
        if collector is not None:
            collector.record(record)

    def records(self, app: Optional[str] = None) -> list[dict]:
        """Recorded spans and events, oldest first."""
        with self._lock:
            if app is not None:
                rings = [self._rings.get(app, deque())]
            else:
                rings = list(self._rings.values())
        merged = [record for ring in rings for record in list(ring)]
        merged.sort(key=lambda r: r["ts_ns"])
        return merged

    def export_jsonl(self, target, app: Optional[str] = None) -> int:
        """Dump the ring contents as JSONL; returns the record count."""
        return _write_jsonl(self.records(app), target)

    def clear(self) -> None:
        with self._lock:
            self._rings.clear()
