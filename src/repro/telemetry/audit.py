"""Append-only audit log of every security decision.

The paper's Section 5.6 design deliberately has *multiple* security
managers — per-application managers for compatibility, the system security
manager for inter-application protection — which means "who denied what"
is genuinely ambiguous without a trail.  Every record therefore names the
deciding manager class alongside the classic audit tuple: the permission
checked, the code source (protection domain) on top of the stack, the
running user of the current application, and the grant/deny outcome.

The log is bounded (a ring of :data:`AUDIT_CAPACITY` records) so an
always-on deployment cannot leak memory, but within the window it is
strictly append-only: nothing in the kernel mutates or removes records.
``deque.append`` is atomic under the GIL, so recording takes no lock on
the hot path; only the grant/deny counters tolerate (rare, harmless)
lost increments.
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from typing import Optional

AUDIT_CAPACITY = 4096


class AuditLog:
    """Bounded append-only record of security-manager decisions."""

    def __init__(self, capacity: int = AUDIT_CAPACITY):
        self._records: deque = deque(maxlen=capacity)
        self._seq = itertools.count(1)
        self.grants = 0
        self.denies = 0

    def record(self, *, check: str, permission: str,
               granted: bool, manager: Optional[str] = None,
               domain: Optional[str] = None, user: Optional[str] = None,
               app_id: Optional[int] = None,
               app_name: Optional[str] = None) -> dict:
        """Append one decision; returns the record written."""
        entry = {"seq": next(self._seq), "ts_ns": time.monotonic_ns(),
                 "check": check, "permission": permission,
                 "granted": granted, "manager": manager, "domain": domain,
                 "user": user, "app_id": app_id, "app": app_name}
        self._records.append(entry)
        if granted:
            self.grants += 1
        else:
            self.denies += 1
        return entry

    # -- read side -------------------------------------------------------------

    def records(self, app_id: Optional[int] = None,
                granted: Optional[bool] = None,
                user: Optional[str] = None) -> list[dict]:
        """A filtered snapshot, oldest first."""
        out = list(self._records)
        if app_id is not None:
            out = [r for r in out if r["app_id"] == app_id]
        if granted is not None:
            out = [r for r in out if r["granted"] is granted]
        if user is not None:
            out = [r for r in out if r["user"] == user]
        return out

    def denials(self, **filters) -> list[dict]:
        return self.records(granted=False, **filters)

    def tail(self, count: int = 20, **filters) -> list[dict]:
        return self.records(**filters)[-count:]

    def export_jsonl(self, target, **filters) -> int:
        """Write records to a path or file-like object; returns the count."""
        records = self.records(**filters)
        if hasattr(target, "write"):
            for record in records:
                target.write(json.dumps(record, default=str) + "\n")
            return len(records)
        with open(target, "w", encoding="utf-8") as sink:
            return self.export_jsonl(sink, **filters)

    def __len__(self) -> int:
        return len(self._records)
