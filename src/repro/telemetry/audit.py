"""Append-only audit log of every security decision.

The paper's Section 5.6 design deliberately has *multiple* security
managers — per-application managers for compatibility, the system security
manager for inter-application protection — which means "who denied what"
is genuinely ambiguous without a trail.  Every record therefore names the
deciding manager class alongside the classic audit tuple: the permission
checked, the code source (protection domain) on top of the stack, the
running user of the current application, and the grant/deny outcome.

The log is bounded (a ring of :data:`AUDIT_CAPACITY` records, adjustable
per deployment via :meth:`AuditLog.set_capacity`) so an always-on
deployment cannot leak memory; overwrites are counted in
:attr:`AuditLog.dropped` and, when bound, a metrics counter.  Within the
window it is strictly append-only: nothing in the kernel mutates or
removes records.  ``deque.append`` is atomic under the GIL, so recording
takes no lock on the hot path; only the grant/deny counters tolerate
(rare, harmless) lost increments.

Beyond the ring, the log is a *consumption* point: listeners registered
with :meth:`AuditLog.add_listener` see every record as it lands (the
policy recorder of :mod:`repro.policytool` captures per-application
slices this way), and :meth:`AuditLog.stream_jsonl` attaches a listener
that appends each record as a JSON line — so long learning sessions can
spool to disk instead of growing the ring.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Iterable, Optional

AUDIT_CAPACITY = 4096

#: The only two classes that decide checks (Section 5.6).  ``audit_check``
#: callers pass free-form labels; :func:`normalize_manager` folds them onto
#: this vocabulary so policy inference can't be confused by label drift.
#: Order matters below: ``SystemSecurityManager`` ends with
#: ``SecurityManager``, so the longer name must be tried first.
KNOWN_MANAGERS = ("SystemSecurityManager", "SecurityManager")


def normalize_manager(label: Optional[str]) -> Optional[str]:
    """Canonicalize a manager label onto :data:`KNOWN_MANAGERS`.

    Subclass and module-qualified spellings (``MySystemSecurityManager``,
    ``repro.security.manager.SecurityManager``) map to the base class name
    they end with; anything unrecognizable passes through unchanged so the
    trail never loses information, only variance.
    """
    if label is None or label in KNOWN_MANAGERS:
        return label
    for known in KNOWN_MANAGERS:
        if label.endswith(known):
            return known
    return label


class JsonlStreamHook:
    """An audit listener that appends each record as one JSON line.

    Accepts a path (opened in append mode and owned by the hook) or any
    object with ``write``.  Writing is serialized by a private lock so
    parallel applications can't interleave half-lines.
    """

    def __init__(self, target):
        if hasattr(target, "write"):
            self._sink = target
            self._owns_sink = False
        else:
            self._sink = open(target, "a", encoding="utf-8")
            self._owns_sink = True
        self._lock = threading.Lock()
        self.written = 0

    def __call__(self, entry: dict) -> None:
        line = json.dumps(entry, default=str)
        with self._lock:
            self._sink.write(line + "\n")
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if self._owns_sink:
                self._sink.close()


class AuditLog:
    """Bounded append-only record of security-manager decisions."""

    def __init__(self, capacity: int = AUDIT_CAPACITY):
        self._records: deque = deque(maxlen=capacity)
        self._seq = itertools.count(1)
        self.grants = 0
        self.denies = 0
        #: Records the ring overwrote (oldest-first eviction).
        self.dropped = 0
        self._drop_counter = None
        #: Immutable tuple, swapped wholesale on (rare) mutation so the
        #: hot recording path iterates without a lock.
        self._listeners: tuple = ()

    # -- configuration ----------------------------------------------------------

    @property
    def capacity(self) -> Optional[int]:
        return self._records.maxlen

    def set_capacity(self, capacity: int) -> None:
        """Re-bound the ring, keeping the newest records."""
        self._records = deque(self._records, maxlen=capacity)

    def bind_drop_counter(self, counter) -> None:
        """Mirror ring overwrites into a metrics counter."""
        self._drop_counter = counter

    # -- listeners --------------------------------------------------------------

    def add_listener(self, listener) -> None:
        """Register ``listener(entry_dict)``; called on every record.

        Listener exceptions are swallowed: observation must never turn a
        granted check into a failure.
        """
        self._listeners = self._listeners + (listener,)

    def remove_listener(self, listener) -> None:
        self._listeners = tuple(
            existing for existing in self._listeners
            if existing is not listener)

    def stream_jsonl(self, target) -> JsonlStreamHook:
        """Attach a listener appending each new record to ``target``.

        Returns the hook; detach with :meth:`unstream`.
        """
        hook = JsonlStreamHook(target)
        self.add_listener(hook)
        return hook

    def unstream(self, hook: JsonlStreamHook) -> None:
        self.remove_listener(hook)
        hook.close()

    # -- write side -------------------------------------------------------------

    def record(self, *, check: str, permission: str,
               granted: bool, manager: Optional[str] = None,
               domain: Optional[str] = None, user: Optional[str] = None,
               app_id: Optional[int] = None,
               app_name: Optional[str] = None,
               ptype: Optional[str] = None,
               target: Optional[str] = None,
               actions: Optional[str] = None,
               phase: Optional[str] = None,
               stack: Optional[Iterable[str]] = None) -> dict:
        """Append one decision; returns the record written.

        ``ptype``/``target``/``actions`` carry the decision in structured
        form (None for string-only checks like the ancestry grants);
        ``phase`` is the application's lifecycle phase at check time and
        ``stack`` the protection-domain names on the walk — captured only
        for applications in policy-learning mode.
        """
        entry = {"seq": next(self._seq), "ts_ns": time.monotonic_ns(),
                 "check": check, "permission": permission,
                 "granted": granted, "manager": normalize_manager(manager),
                 "domain": domain, "user": user, "app_id": app_id,
                 "app": app_name, "ptype": ptype, "target": target,
                 "actions": actions, "phase": phase}
        if stack is not None:
            entry["stack"] = tuple(stack)
        records = self._records
        if records.maxlen is not None and len(records) == records.maxlen:
            self.dropped += 1
            counter = self._drop_counter
            if counter is not None:
                counter.inc()
        records.append(entry)
        if granted:
            self.grants += 1
        else:
            self.denies += 1
        for listener in self._listeners:
            try:
                listener(entry)
            except Exception:
                pass
        return entry

    # -- read side -------------------------------------------------------------

    def records(self, app_id: Optional[int] = None,
                granted: Optional[bool] = None,
                user: Optional[str] = None) -> list[dict]:
        """A filtered snapshot, oldest first."""
        out = list(self._records)
        if app_id is not None:
            out = [r for r in out if r["app_id"] == app_id]
        if granted is not None:
            out = [r for r in out if r["granted"] is granted]
        if user is not None:
            out = [r for r in out if r["user"] == user]
        return out

    def denials(self, **filters) -> list[dict]:
        return self.records(granted=False, **filters)

    def tail(self, count: int = 20, **filters) -> list[dict]:
        return self.records(**filters)[-count:]

    def export_jsonl(self, target, **filters) -> int:
        """Write records to a path or file-like object; returns the count."""
        records = self.records(**filters)
        if hasattr(target, "write"):
            for record in records:
                target.write(json.dumps(record, default=str) + "\n")
            return len(records)
        with open(target, "w", encoding="utf-8") as sink:
            return self.export_jsonl(sink, **filters)

    def __len__(self) -> int:
        return len(self._records)
