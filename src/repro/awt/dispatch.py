"""Event dispatching: centralized (Figure 2) vs per-application (Figure 4).

The paper's Feature 7 problem: in the classic JVM "a centralized event
dispatcher thread will pick up events from that queue and call the
appropriate methods", so when Alice and Bob run the same editor "the very
same thread will execute the very same code.  Thus, there is no way of
distinguishing between the two cases."

* :class:`CentralizedDispatcher` reproduces the classic design, including
  footnote 5's quirk: "Whichever application happens to open a window first
  would implicitly start the event dispatcher" — the dispatcher thread is
  created on demand **in whatever thread group is current**.
* :class:`PerApplicationDispatcher` is the paper's redesign (Section 5.4):
  one event queue per application, dispatched by a *non-daemon* thread
  created inside that application's own thread group — so the code that
  runs in response to Alice's click runs as one of Alice's threads, and
  "each application's event dispatching is now independent from other
  applications".
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.awt.events import (
    AWTEvent,
    EventQueue,
    InvocationEvent,
    PaintEvent,
)
from repro.jvm.threads import JThread, ThreadGroup
from repro.security.policy import PHASE_STEADY


def coalesce_repaints(batch: list) -> tuple:
    """Last-writer-wins repaint coalescing within one dispatch batch.

    For each component, only the batch's *final* :class:`PaintEvent`
    survives (keyed by event type and source identity, so a subclassed
    paint event never swallows a plain one).  Dropping the superseded
    repaints is safe because painting is idempotent and the last request
    already reflects the component's final state; everything that is not
    a paint event keeps its exact position and ordering.

    Returns ``(events_to_dispatch, dropped_count)``.
    """
    last: dict = {}
    paints = 0
    for index, event in enumerate(batch):
        if isinstance(event, PaintEvent):
            paints += 1
            last[(type(event), id(event.source))] = index
    if paints <= len(last):
        return batch, 0
    kept = [event for index, event in enumerate(batch)
            if not isinstance(event, PaintEvent)
            or last[(type(event), id(event.source))] == index]
    return kept, len(batch) - len(kept)


class EventDispatchThread:
    """A thread that drains one event queue until the queue closes.

    When a telemetry ``hub`` is supplied, every drained event feeds the
    per-application ``awt.dispatch.latency_s`` histogram (post-to-dispatch
    time, via the ``_posted_ns`` stamp the dispatchers set) and the
    ``awt.events.dispatched`` counter; with tracing on, each dispatch is
    an ``awt.dispatch`` span.

    ``backing="sched"`` runs the drain loop as a continuation task on the
    VM's event-loop scheduler instead of a dedicated OS thread: the EDT
    parks on the queue's wait-point between batches, so 10k idle
    applications cost 10k parked generator frames, not 10k OS threads.
    Event-handler code observes the same :class:`JThread` identity and
    thread group either way (Section 5.4's accountability is preserved).
    """

    def __init__(self, queue: EventQueue, group: ThreadGroup, name: str,
                 daemon: bool = False, error_sink=None,
                 hub=None, app_label: Optional[str] = None,
                 backing: Optional[str] = None):
        self.queue = queue
        self._error_sink = error_sink
        self._hub = hub
        self._app_label = app_label
        #: label -> (latency histogram, dispatched counter); the dispatch
        #: loop must not pay a registry lookup per event.
        self._instruments: dict = {}
        target = self._task_loop if backing == "sched" else self._loop
        self.thread = JThread(target=target, name=name, group=group,
                              daemon=daemon, backing=backing)

    def start(self) -> "EventDispatchThread":
        self.thread.start()
        return self

    def _label_for(self, event: AWTEvent) -> str:
        application = event.application
        if application is not None:
            return application.name
        return self._app_label or "system"

    def _instruments_for(self, label: str):
        pair = self._instruments.get(label)
        if pair is None:
            metrics = self._hub.metrics
            pair = (metrics.histogram("awt.dispatch.latency_s", app=label),
                    metrics.counter("awt.events.dispatched", app=label))
            self._instruments[label] = pair
        return pair

    def _batch_counters(self):
        hub = self._hub
        if hub is None:
            return None, None
        label = self._app_label or "system"
        return (hub.metrics.counter("awt.dispatch.batched", app=label),
                hub.metrics.counter("awt.repaint.coalesced", app=label))

    def _dispatch_batch(self, batch, batched, coalesced) -> None:
        hub = self._hub
        tracer = hub.tracer if hub is not None else None
        batch, dropped = coalesce_repaints(batch)
        if hub is not None:
            if len(batch) > 1:
                # Events beyond the first rode along on one wakeup.
                batched.inc(len(batch) - 1)
            if dropped:
                coalesced.inc(dropped)
        for event in batch:
            span = None
            if hub is not None:
                label = self._label_for(event)
                latency, dispatched = self._instruments_for(label)
                posted = event._posted_ns
                if posted is not None:
                    latency.observe(
                        (time.monotonic_ns() - posted) / 1e9)
                dispatched.inc()
                if tracer.recording:
                    span = tracer.span("awt.dispatch", app=label,
                                       event=type(event).__name__)
            try:
                event.dispatch()
            except BaseException as exc:  # noqa: BLE001 - EDT survives
                if span is not None:
                    span.set(error=type(exc).__name__)
                if self._error_sink is not None:
                    self._error_sink(event, exc)
            finally:
                if span is not None:
                    span.end()

    def _loop(self) -> None:
        batched, coalesced = self._batch_counters()
        while True:
            batch = self.queue.drain_events()
            if batch is None:
                return
            self._dispatch_batch(batch, batched, coalesced)

    def _task_loop(self):
        """The same drain loop as a continuation (scheduler backing).

        Parks on the queue's wait-point between batches; an empty batch
        from the untimed drain means the queue closed.  Dispatch itself
        stays synchronous within the step — handlers run under this
        EDT's :class:`JThread` identity exactly as on the OS backing.
        """
        from repro.sched import ops
        batched, coalesced = self._batch_counters()
        while True:
            batch = yield from ops.drain_events(self.queue)
            if not batch:
                return
            self._dispatch_batch(batch, batched, coalesced)

    def shutdown(self) -> None:
        self.queue.close()

    def join(self, timeout: Optional[float] = None) -> None:
        self.thread.join(timeout)


class Dispatcher:
    """Common dispatcher interface used by the toolkit."""

    def post(self, event: AWTEvent) -> None:
        raise NotImplementedError

    def invoke_later(self, runnable, application=None) -> InvocationEvent:
        event = InvocationEvent(runnable)
        event.application = application
        self.post(event)
        return event

    def invoke_and_wait(self, runnable, application=None,
                        timeout: float = 5.0) -> None:
        event = self.invoke_later(runnable, application)
        event.await_completion(timeout)
        if event.exception is not None:
            raise event.exception

    def shutdown(self) -> None:
        raise NotImplementedError


class CentralizedDispatcher(Dispatcher):
    """One queue, one dispatcher thread for *all* applications (Figure 2)."""

    def __init__(self, vm, error_sink=None):
        self.vm = vm
        self.queue = EventQueue("awt-global")
        self._edt: Optional[EventDispatchThread] = None
        self._lock = threading.Lock()
        self._error_sink = error_sink
        self._depth_gauge = vm.telemetry.metrics.gauge(
            "awt.queue.depth", app="global")
        #: The group the EDT ended up in (observable footnote-5 behaviour).
        self.edt_group: Optional[ThreadGroup] = None

    def _ensure_edt(self) -> None:
        with self._lock:
            if self._edt is not None:
                return
            # Footnote 5: the dispatcher starts in whatever group happens
            # to be current when the first window is opened.
            current = JThread.current_or_none()
            group = current.group if current is not None else \
                self.vm.main_group
            self.edt_group = group
            self._edt = EventDispatchThread(
                self.queue, group, "AWT-EventDispatch", daemon=False,
                error_sink=self._error_sink, hub=self.vm.telemetry,
                app_label="global").start()

    def post(self, event: AWTEvent) -> None:
        self._ensure_edt()
        event._posted_ns = time.monotonic_ns()
        # Depth of the single shared queue (Figure 2's bottleneck).
        self._depth_gauge.set(self.queue.post_event(event))

    @property
    def started(self) -> bool:
        return self._edt is not None

    def shutdown(self) -> None:
        with self._lock:
            edt = self._edt
        if edt is not None:
            edt.shutdown()
            edt.join(2.0)


class PerApplicationDispatcher(Dispatcher):
    """One queue and one dispatcher thread per application (Figure 4)."""

    def __init__(self, vm, error_sink=None):
        self.vm = vm
        self._lock = threading.Lock()
        self._error_sink = error_sink
        #: label -> queue-depth gauge (one per application + "system").
        self._depth_gauges: dict = {}
        #: Events whose application cannot be determined fall back to a
        #: system queue drained by a daemon thread in the system group.
        self._system_queue: Optional[EventQueue] = None
        self._system_edt: Optional[EventDispatchThread] = None

    def ensure_application_dispatcher(self, application) -> EventQueue:
        """Create the application's queue + EDT on first use (Section 5.4).

        "The per-application event dispatcher threads ... are created on
        demand.  Whenever an application first opens a window, we create an
        event dispatcher thread for this application.  Since that thread is
        a non-daemon thread, we now have the same semantics for
        application-exit that we had before."
        """
        with self._lock:
            if application.event_queue is None:
                queue = EventQueue(f"awt-{application.name}")
                # Per-application EDTs keep dedicated OS threads even when
                # the application's main runs as a scheduler task: event
                # handlers are arbitrary code that may block, and the
                # Section 5.4 responsiveness claim (one app's blocked
                # callback must not delay another's clicks) needs
                # preemptive isolation between applications.  The queue
                # itself is a scheduler wait-object, so task code can
                # still consume it via ops.next_event/drain_events, and
                # EventDispatchThread(backing="sched") remains available
                # for handlers known not to block.
                edt = EventDispatchThread(
                    queue, application.thread_group,
                    f"AWT-EventDispatch-{application.name}", daemon=False,
                    error_sink=self._error_sink, hub=self.vm.telemetry,
                    app_label=application.name)
                application.event_queue = queue
                application.event_dispatch_thread = edt
                edt.start()
                # First dispatch marks the end of startup: the kernel's
                # init → steady transition for the execution-state MAC.
                application._advance_phase(PHASE_STEADY, strict=False)
            return application.event_queue

    def _ensure_system_edt(self) -> EventQueue:
        with self._lock:
            if self._system_queue is None:
                self._system_queue = EventQueue("awt-system")
                self._system_edt = EventDispatchThread(
                    self._system_queue, self.vm.root_group,
                    "AWT-EventDispatch-system", daemon=True,
                    error_sink=self._error_sink, hub=self.vm.telemetry,
                    app_label="system").start()
            return self._system_queue

    def post(self, event: AWTEvent) -> None:
        application = event.application
        if application is not None and not application.terminated:
            queue = self.ensure_application_dispatcher(application)
            label = application.name
        else:
            queue = self._ensure_system_edt()
            label = "system"
        gauge = self._depth_gauges.get(label)
        if gauge is None:
            gauge = self.vm.telemetry.metrics.gauge("awt.queue.depth",
                                                    app=label)
            self._depth_gauges[label] = gauge
        event._posted_ns = time.monotonic_ns()
        # Per-application queue depth (Figure 4: independent queues).
        gauge.set(queue.post_event(event))

    def shutdown_application(self, application) -> None:
        """Close an application's queue (reaper teardown path)."""
        edt = application.event_dispatch_thread
        if edt is not None:
            edt.shutdown()

    def shutdown(self) -> None:
        with self._lock:
            edt = self._system_edt
        if edt is not None:
            edt.shutdown()
            edt.join(2.0)
