"""A simulated X server (Section 3.2, Figure 2).

"In X, a special process (the X server) has exclusive control over the
high-resolution display. ...  The X server will then draw on behalf of that
application, making note which GUI component it drew on behalf of which
application.  When some input from the keyboard or mouse occurs, the X
server will figure out which GUI component was the target of that input and
notify the appropriate process."

:class:`XServer` reproduces that role: it owns the window registry, records
draw operations per window, and routes injected input to the *client
connection* that created the target window.  Clients (JVM toolkits) talk to
it over :class:`XConnection` message queues — our stand-in for the X wire
protocol.  Tests and benchmarks inject input with :meth:`send_key`,
:meth:`click`, and :meth:`click_component`.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.jvm.errors import IllegalArgumentException
from repro.sched.timers import wait_until


class XConnection:
    """One client's wire to the X server: a queue of message dicts."""

    def __init__(self, client_name: str = "client"):
        self.client_name = client_name
        self._messages: list[dict] = []
        self._cond = threading.Condition()
        self._closed = False

    def deliver(self, message: dict) -> None:
        with self._cond:
            if self._closed:
                return
            self._messages.append(message)
            self._cond.notify_all()

    def receive(self) -> Optional[dict]:
        """Block for the next message; None once the connection is closed."""
        with self._cond:
            wait_until(self._cond,
                       lambda: self._messages or self._closed)
            if self._messages:
                return self._messages.pop(0)
            return None

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed


class _WindowRecord:
    """Server-side note: which window belongs to which client."""

    def __init__(self, window_id: int, connection: XConnection, title: str):
        self.window_id = window_id
        self.connection = connection
        self.title = title
        self.draw_ops: list[dict] = []


class XServer:
    """The display server: window registry, draw log, input routing."""

    def __init__(self, display_name: str = ":0"):
        self.display_name = display_name
        self._windows: dict[int, _WindowRecord] = {}
        self._next_id = 1
        self._lock = threading.RLock()

    # -- client-facing protocol ----------------------------------------------------

    def create_window(self, connection: XConnection, title: str) -> int:
        with self._lock:
            window_id = self._next_id
            self._next_id += 1
            self._windows[window_id] = _WindowRecord(window_id, connection,
                                                     title)
            return window_id

    def destroy_window(self, window_id: int) -> None:
        with self._lock:
            self._windows.pop(window_id, None)

    def record_draw(self, window_id: int, op: dict) -> None:
        """Draw on behalf of a client, keeping the per-window note."""
        with self._lock:
            record = self._windows.get(window_id)
            if record is not None:
                record.draw_ops.append(op)

    # -- queries ----------------------------------------------------------------------

    def window_ids(self) -> list[int]:
        with self._lock:
            return sorted(self._windows)

    def window_title(self, window_id: int) -> str:
        return self._record(window_id).title

    def draw_ops(self, window_id: int) -> list[dict]:
        with self._lock:
            return list(self._record(window_id).draw_ops)

    def find_window(self, title: str) -> Optional[int]:
        with self._lock:
            for window_id, record in self._windows.items():
                if record.title == title:
                    return window_id
            return None

    def _record(self, window_id: int) -> _WindowRecord:
        with self._lock:
            record = self._windows.get(window_id)
        if record is None:
            raise IllegalArgumentException(f"no such window: {window_id}")
        return record

    # -- input injection (the user's keyboard and mouse) ---------------------------------

    def _route(self, window_id: int, message: dict) -> None:
        record = self._record(window_id)
        message["window"] = window_id
        record.connection.deliver(message)

    def send_key(self, window_id: int, component: str, char: str) -> None:
        """A key press targeted at a component of a window."""
        self._route(window_id, {"type": "key", "component": component,
                                "char": char})

    def type_text(self, window_id: int, component: str, text: str) -> None:
        for char in text:
            self.send_key(window_id, component, char)

    def click(self, window_id: int, x: int, y: int) -> None:
        """A raw mouse click at window coordinates."""
        self._route(window_id, {"type": "mouse", "component": None,
                                "x": x, "y": y})

    def click_component(self, window_id: int, component: str) -> None:
        """A mouse click resolved to a named component (hit-tested)."""
        self._route(window_id, {"type": "mouse", "component": component,
                                "x": 0, "y": 0})

    def select_menu_item(self, window_id: int, item: str) -> None:
        """The user picks a menu entry (the Save File scenario, §4)."""
        self._route(window_id, {"type": "action", "component": item,
                                "command": item})

    def request_close(self, window_id: int) -> None:
        """The window manager asks the window to close."""
        self._route(window_id, {"type": "window-closing", "component": None})
