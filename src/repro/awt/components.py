"""GUI components: windows, buttons, text fields, menus.

The component model is the minimal AWT slice the paper's experiments need:
a tree of named components inside top-level windows, listener registration
(``ActionListener`` et al.), and painting recorded into a per-window paint
log (our stand-in for the X server drawing "on behalf of that application",
Section 3.2).

Event *delivery* is not done here — events arrive from the
:mod:`~repro.awt.toolkit` via a dispatcher thread and are handed to
:meth:`Component.process_event`, reproducing the paper's observation that
"all callbacks are called from a single event dispatcher thread" (or from
the owning application's dispatcher in the multi-processing design).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.awt.events import (
    ActionEvent,
    AWTEvent,
    FocusEvent,
    KeyEvent,
    MouseEvent,
    PaintEvent,
    WindowEvent,
)
from repro.jvm.errors import IllegalArgumentException, IllegalStateException


class Graphics:
    """Records draw operations into the enclosing window's paint log."""

    def __init__(self, window: "Window", component: "Component"):
        self._window = window
        self._component = component

    def _record(self, op: str, **details) -> None:
        entry = {"component": self._component.name, "op": op, **details}
        self._window.paint_log.append(entry)
        if self._window.toolkit is not None:
            self._window.toolkit.record_draw(self._window, entry)

    def draw_text(self, x: int, y: int, text: str) -> None:
        self._record("text", x=x, y=y, text=text)

    def fill_rect(self, x: int, y: int, width: int, height: int) -> None:
        self._record("rect", x=x, y=y, width=width, height=height)

    def draw_line(self, x1: int, y1: int, x2: int, y2: int) -> None:
        self._record("line", x1=x1, y1=y1, x2=x2, y2=y2)


class Component:
    """A named node of the GUI tree."""

    _anon_counter = 0

    def __init__(self, name: Optional[str] = None):
        if name is None:
            Component._anon_counter += 1
            name = f"component-{Component._anon_counter}"
        self.name = name
        self.parent: Optional["Container"] = None
        self.visible = True
        self.enabled = True
        self.focused = False
        self._listeners: dict[type, list[Callable[[AWTEvent], None]]] = {}

    # -- listeners --------------------------------------------------------------

    def add_listener(self, event_type: type,
                     listener: Callable[[AWTEvent], None]) -> None:
        if not issubclass(event_type, AWTEvent):
            raise IllegalArgumentException(
                f"{event_type!r} is not an AWTEvent type")
        self._listeners.setdefault(event_type, []).append(listener)

    def remove_listener(self, event_type: type,
                        listener: Callable[[AWTEvent], None]) -> None:
        self._listeners.get(event_type, []).remove(listener)

    def add_action_listener(self,
                            listener: Callable[[ActionEvent], None]) -> None:
        """Register an ``ActionListener`` (Section 3.2's example)."""
        self.add_listener(ActionEvent, listener)

    def add_key_listener(self, listener: Callable[[KeyEvent], None]) -> None:
        self.add_listener(KeyEvent, listener)

    def _listeners_for(self, event: AWTEvent) -> list:
        found = []
        for event_type, listeners in self._listeners.items():
            if isinstance(event, event_type):
                found.extend(listeners)
        return found

    # -- event processing ------------------------------------------------------------

    def process_event(self, event: AWTEvent) -> None:
        """Deliver ``event`` to this component's listeners.

        Called from a dispatcher thread; subclasses first translate
        low-level input into semantic events (Button: click → action).
        """
        if not self.enabled:
            return
        if isinstance(event, PaintEvent):
            self.repaint()
            return
        if isinstance(event, FocusEvent):
            self.focused = event.gained
        for listener in self._listeners_for(event):
            listener(event)

    # -- geometry in the tree ------------------------------------------------------

    def window(self) -> Optional["Window"]:
        node: Optional[Component] = self
        while node is not None and not isinstance(node, Window):
            node = node.parent
        return node

    def paint(self, graphics: Graphics) -> None:
        """Default painting: subclasses draw their face."""

    def repaint(self) -> None:
        window = self.window()
        if window is not None:
            self.paint(Graphics(window, self))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class Container(Component):
    """A component holding children."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self.children: list[Component] = []

    def add(self, child: Component) -> Component:
        if child.parent is not None:
            raise IllegalArgumentException(
                f"component {child.name} already has a parent")
        child.parent = self
        self.children.append(child)
        return child

    def remove(self, child: Component) -> None:
        if child in self.children:
            self.children.remove(child)
            child.parent = None

    def find(self, name: str) -> Optional[Component]:
        """Depth-first search by component name (used for event routing)."""
        if self.name == name:
            return self
        for child in self.children:
            if child.name == name:
                return child
            if isinstance(child, Container):
                found = child.find(name)
                if found is not None:
                    return found
        return None

    def repaint(self) -> None:
        super().repaint()
        for child in self.children:
            child.repaint()


class Label(Component):
    """Static text."""

    def __init__(self, text: str, name: Optional[str] = None):
        super().__init__(name)
        self.text = text

    def paint(self, graphics: Graphics) -> None:
        graphics.draw_text(0, 0, self.text)


class Button(Component):
    """A push button: click becomes an :class:`ActionEvent`."""

    def __init__(self, label: str, name: Optional[str] = None,
                 action_command: Optional[str] = None):
        super().__init__(name)
        self.label = label
        self.action_command = action_command or label

    def process_event(self, event: AWTEvent) -> None:
        if isinstance(event, MouseEvent) and self.enabled:
            translated = ActionEvent(self, self.action_command)
            translated.application = event.application
            super().process_event(translated)
            return
        super().process_event(event)

    def paint(self, graphics: Graphics) -> None:
        graphics.draw_text(0, 0, f"[ {self.label} ]")


class TextField(Component):
    """Single-line text input; Enter fires an action event."""

    def __init__(self, text: str = "", name: Optional[str] = None):
        super().__init__(name)
        self.text = text

    def process_event(self, event: AWTEvent) -> None:
        if isinstance(event, KeyEvent) and self.enabled:
            if event.char == "\n":
                translated = ActionEvent(self, self.text)
                translated.application = event.application
                super().process_event(translated)
            elif event.char == "\b":
                self.text = self.text[:-1]
            else:
                self.text += event.char
        super().process_event(event)

    def paint(self, graphics: Graphics) -> None:
        graphics.draw_text(0, 0, f"|{self.text}|")


class TextArea(Component):
    """Multi-line text buffer (the editor examples build on this)."""

    def __init__(self, text: str = "", name: Optional[str] = None):
        super().__init__(name)
        self.text = text

    def append(self, more: str) -> None:
        self.text += more

    def process_event(self, event: AWTEvent) -> None:
        if isinstance(event, KeyEvent) and self.enabled:
            if event.char == "\b":
                self.text = self.text[:-1]
            else:
                self.text += event.char
        super().process_event(event)

    def paint(self, graphics: Graphics) -> None:
        for index, line in enumerate(self.text.splitlines()):
            graphics.draw_text(0, index, line)


class MenuItem(Component):
    """An entry in a menu; selection fires an action event."""

    def __init__(self, label: str, name: Optional[str] = None):
        super().__init__(name)
        self.label = label

    def select(self) -> None:
        """Programmatic selection (tests); real input goes via the server."""
        self.process_event(ActionEvent(self, self.label))


class Menu(Container):
    """A titled list of menu items."""

    def __init__(self, label: str, name: Optional[str] = None):
        super().__init__(name)
        self.label = label

    def add_item(self, label: str,
                 listener: Optional[Callable[[ActionEvent], None]] = None,
                 name: Optional[str] = None) -> MenuItem:
        item = MenuItem(label, name)
        if listener is not None:
            item.add_action_listener(listener)
        self.add(item)
        return item


class MenuBar(Container):
    """The menu bar of a :class:`Frame`."""

    def add_menu(self, label: str, name: Optional[str] = None) -> Menu:
        menu = Menu(label, name)
        self.add(menu)
        return menu


class Window(Container):
    """A top-level window, registered with the toolkit when shown.

    Section 5.4: "When an application opens a window, the system makes note
    about which application the window belongs to."  That note is taken by
    the toolkit at :meth:`show` time; the window itself just remembers the
    assignment.
    """

    def __init__(self, title: str, name: Optional[str] = None):
        super().__init__(name)
        self.title = title
        self.toolkit = None
        self.window_id: Optional[int] = None
        self.application = None
        self.paint_log: list[dict] = []
        self.disposed = False

    def show(self, toolkit=None) -> "Window":
        """Map the window onto the display (registers with the toolkit)."""
        if self.disposed:
            raise IllegalStateException("window has been disposed")
        if self.window_id is not None:
            return self
        if toolkit is None:
            toolkit = self._default_toolkit()
        toolkit.register_window(self)
        self.process_event(WindowEvent(self, WindowEvent.OPENED))
        return self

    def _default_toolkit(self):
        from repro.core.context import current_application_or_none
        app = current_application_or_none()
        if app is not None and app.vm.toolkit is not None:
            return app.vm.toolkit
        raise IllegalStateException(
            "no toolkit available; pass one to show()")

    def dispose(self) -> None:
        if self.disposed:
            return
        self.disposed = True
        if self.toolkit is not None:
            self.toolkit.unregister_window(self)
        self.process_event(WindowEvent(self, WindowEvent.CLOSED))

    def process_event(self, event: AWTEvent) -> None:
        if isinstance(event, WindowEvent) and event.kind == \
                WindowEvent.CLOSING:
            for listener in self._listeners_for(event):
                listener(event)
            return
        super().process_event(event)


class Frame(Window):
    """A window with a menu bar."""

    def __init__(self, title: str, name: Optional[str] = None):
        super().__init__(title, name)
        self.menu_bar: Optional[MenuBar] = None

    def set_menu_bar(self, menu_bar: MenuBar) -> None:
        if menu_bar.parent is not None:
            raise IllegalArgumentException("menu bar already attached")
        self.menu_bar = menu_bar
        self.add(menu_bar)
