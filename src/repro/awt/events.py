"""AWT events and event queues (Section 3.2).

"When the JVM gets notified by the X server that some user input happened,
an AWT event object is created which contains information about the event
(for example, where a specific mouse click happened).  This object is put on
a queue.  A centralized event dispatcher thread will pick up events from
that queue and call the appropriate methods to handle the event."

:class:`EventQueue` is that queue; the dispatcher threads live in
:mod:`repro.awt.dispatch`.  In the multi-processing VM there is one queue
*per application* (Section 5.4, Figure 4).
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Optional

from repro.jvm.errors import IllegalStateException
from repro.sched.timers import wait_until
from repro.sched.waitobj import WaitPoint

_sequence = itertools.count(1)


class AWTEvent:
    """Base event: a source component and a monotonically increasing id."""

    #: Monotonic stamp set by the dispatchers at post time; feeds the
    #: post-to-dispatch latency histogram.
    _posted_ns = None

    def __init__(self, source):
        self.source = source
        self.when = next(_sequence)
        #: Filled by the toolkit when the event is routed: the application
        #: owning the target window (None in single-app / centralized mode).
        self.application = None

    def dispatch(self) -> None:
        """Deliver this event to its source component."""
        if self.source is not None:
            self.source.process_event(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        source = getattr(self.source, "name", self.source)
        return f"{type(self).__name__}(source={source!r}, when={self.when})"


class ActionEvent(AWTEvent):
    """Semantic action (button pressed, menu item selected)."""

    def __init__(self, source, command: str):
        super().__init__(source)
        self.command = command


class KeyEvent(AWTEvent):
    """A key typed into a component."""

    def __init__(self, source, char: str):
        super().__init__(source)
        self.char = char


class MouseEvent(AWTEvent):
    """A mouse click at component-relative coordinates."""

    def __init__(self, source, x: int, y: int, clicks: int = 1):
        super().__init__(source)
        self.x = x
        self.y = y
        self.clicks = clicks


class FocusEvent(AWTEvent):
    """Focus gained or lost."""

    def __init__(self, source, gained: bool):
        super().__init__(source)
        self.gained = gained


class WindowEvent(AWTEvent):
    """Window lifecycle notification."""

    OPENED = "opened"
    CLOSING = "closing"
    CLOSED = "closed"

    def __init__(self, source, kind: str):
        super().__init__(source)
        self.kind = kind


class PaintEvent(AWTEvent):
    """Request to repaint a component."""


class InvocationEvent(AWTEvent):
    """Runs a callable on the dispatcher thread (``invokeLater``)."""

    def __init__(self, runnable: Callable[[], None]):
        super().__init__(source=None)
        self.runnable = runnable
        self._done = threading.Event()
        self.exception: Optional[BaseException] = None

    def dispatch(self) -> None:
        try:
            self.runnable()
        except BaseException as exc:  # noqa: BLE001 - reported to waiter
            self.exception = exc
        finally:
            self._done.set()

    def await_completion(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)


class EventQueue:
    """A FIFO of AWT events with blocking, interruptible retrieval."""

    def __init__(self, name: str = "event-queue"):
        self.name = name
        self._events: list[AWTEvent] = []
        self._cond = WaitPoint()
        self._closed = False

    def post_event(self, event: AWTEvent) -> int:
        """Enqueue the event; returns the resulting queue depth."""
        with self._cond:
            if self._closed:
                raise IllegalStateException(
                    f"event queue {self.name} is closed")
            self._events.append(event)
            if len(self._events) == 1:
                # Edge-triggered: a retriever only ever waits on an empty
                # queue, so only the empty → non-empty transition can have
                # a waiter to wake; every other notify is lock churn.
                self._cond.notify_all()
            return len(self._events)

    def next_event(self) -> Optional[AWTEvent]:
        """Block for the next event; None once the queue is closed."""
        with self._cond:
            wait_until(self._cond,
                       lambda: self._events or self._closed)
            if self._events:
                return self._events.pop(0)
            return None

    def try_next_event(self) -> tuple[Optional[AWTEvent], bool]:
        """Non-blocking take: ``(event_or_None, closed)``.

        Task-backed dispatchers loop on this plus :meth:`wait_point`
        (``repro.sched.ops.next_event``) instead of blocking the loop.
        """
        with self._cond:
            if self._events:
                return self._events.pop(0), self._closed
            return None, self._closed

    def try_drain_events(self) -> tuple[list[AWTEvent], bool]:
        """Non-blocking drain: ``(batch, closed)``; batch may be empty."""
        with self._cond:
            if self._events:
                batch = self._events
                self._events = []
                return batch, self._closed
            return [], self._closed

    def pending_hint(self) -> bool:
        """True when a retrieval would not block (events or closed)."""
        return bool(self._events) or self._closed

    def wait_point(self) -> WaitPoint:
        return self._cond

    def drain_events(self) -> Optional[list[AWTEvent]]:
        """Block for events, then return *everything* pending at once.

        The batched retrieval path: one wakeup hands the caller the
        queue's whole backlog (the list itself — no copy), so a burst of
        N posts costs one dispatcher handshake instead of N
        ``next_event`` round trips.  Returns None once the queue is
        closed and drained, mirroring :meth:`next_event`.
        """
        with self._cond:
            wait_until(self._cond,
                       lambda: self._events or self._closed)
            if self._events:
                batch = self._events
                self._events = []
                return batch
            return None

    def peek_event(self) -> Optional[AWTEvent]:
        with self._cond:
            return self._events[0] if self._events else None

    def pending(self) -> int:
        with self._cond:
            return len(self._events)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventQueue({self.name!r}, pending={self.pending()})"
