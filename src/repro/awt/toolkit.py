"""The AWT toolkit: the JVM's connection to the (simulated) X server.

Two behaviours of the classic JVM are reproduced and then fixed, following
Sections 3.2, 4 (Features 6/7) and 5.4:

* **X connection thread placement.**  Classic mode starts the thread that
  communicates with the X server "in whatever thread group happens to be
  current when the need for them arises"; the multi-processing mode places
  it in the *system* thread group, since it "does not belong to any
  application".
* **Event routing.**  Classic (``CENTRALIZED``) mode funnels every event
  into one global queue drained by one dispatcher thread (Figure 2);
  multi-processing (``PER_APPLICATION``) mode looks up the window's owning
  application and posts to that application's own queue (Figure 4).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.awt.components import Window
from repro.awt.dispatch import (
    CentralizedDispatcher,
    Dispatcher,
    PerApplicationDispatcher,
)
from repro.awt.events import (
    ActionEvent,
    AWTEvent,
    KeyEvent,
    MouseEvent,
    WindowEvent,
)
from repro.awt.xserver import XConnection, XServer
from repro.jvm.errors import IllegalArgumentException
from repro.jvm.threads import JThread

CENTRALIZED = "centralized"
PER_APPLICATION = "per-application"


class Toolkit:
    """One JVM's windowing toolkit.

    Created by the launcher; ``dispatch_mode`` selects between the paper's
    baseline (Figure 2) and its redesign (Figure 4), and
    ``legacy_thread_placement`` selects where the X-connection thread is
    created (the Feature 6 bug vs. the Section 5.4 fix).
    """

    def __init__(self, vm, xserver: Optional[XServer] = None,
                 dispatch_mode: str = PER_APPLICATION,
                 legacy_thread_placement: bool = False):
        if dispatch_mode not in (CENTRALIZED, PER_APPLICATION):
            raise IllegalArgumentException(
                f"unknown dispatch mode {dispatch_mode!r}")
        self.vm = vm
        self.xserver = xserver if xserver is not None else XServer()
        self.dispatch_mode = dispatch_mode
        self.legacy_thread_placement = legacy_thread_placement
        self.connection = XConnection(f"jvm-{vm.os_context.pid}")
        self.dispatcher: Dispatcher = (
            CentralizedDispatcher(vm, error_sink=self._dispatch_error)
            if dispatch_mode == CENTRALIZED
            else PerApplicationDispatcher(
                vm, error_sink=self._dispatch_error))
        self._windows: dict[int, Window] = {}
        self._x_thread: Optional[JThread] = None
        self._lock = threading.RLock()
        #: Where the X thread was created (observable for the F6 tests).
        self.x_thread_group = None
        vm.toolkit = self

    # -- the X connection thread (started on demand, Section 5.4) --------------------

    def _ensure_x_thread(self) -> None:
        with self._lock:
            if self._x_thread is not None:
                return
            if self.legacy_thread_placement:
                # Feature 6 bug: "certain threads that the runtime system
                # creates on behalf of the user (e.g., the thread that
                # communicates with the X server) are created in whatever
                # thread group happens to be current".
                current = JThread.current_or_none()
                group = current.group if current is not None \
                    else self.vm.root_group
            else:
                # Section 5.4 fix: "we changed the runtime system so that
                # these threads are created in a special system thread
                # group, which does not belong to any application."
                group = self.vm.root_group
            self.x_thread_group = group
            # System code placing its thread into the system group acts
            # with its own (full) privileges, like toolkit doPrivileged.
            from repro.security import access

            def spawn():
                thread = JThread(target=self._x_loop,
                                 name="AWT-XConnection", group=group,
                                 daemon=True)
                thread.start()
                return thread

            self._x_thread = access.do_privileged_system(spawn)

    def _x_loop(self) -> None:
        """Receive wire messages from the X server, translate, route."""
        while True:
            message = self.connection.receive()
            if message is None:
                return
            try:
                event = self._translate(message)
            except IllegalArgumentException:
                continue  # window vanished; drop the event like X does
            if event is not None:
                self.dispatcher.post(event)

    def _translate(self, message: dict) -> Optional[AWTEvent]:
        with self._lock:
            window = self._windows.get(message["window"])
        if window is None:
            return None
        component = window
        component_name = message.get("component")
        if component_name is not None:
            found = window.find(component_name)
            if found is None:
                return None
            component = found
        kind = message["type"]
        if kind == "key":
            event: AWTEvent = KeyEvent(component, message["char"])
        elif kind == "mouse":
            event = MouseEvent(component, message.get("x", 0),
                               message.get("y", 0))
        elif kind == "action":
            event = ActionEvent(component, message["command"])
        elif kind == "window-closing":
            event = WindowEvent(window, WindowEvent.CLOSING)
        else:
            return None
        # Section 5.4: "When an event occurs in a GUI element, the enclosing
        # window and its application are found."
        event.application = window.application
        return event

    def _dispatch_error(self, event: AWTEvent, exc: BaseException) -> None:
        self.vm.report_uncaught(JThread.current_or_none(), exc)

    # -- window registry -----------------------------------------------------------

    def register_window(self, window: Window) -> None:
        """A window is shown: note its owning application (Section 5.4)."""
        sm = self.vm.security_manager
        if sm is not None:
            sm.check_top_level_window(window)
        self._ensure_x_thread()
        from repro.core.context import current_application_or_none
        application = current_application_or_none()
        window_id = self.xserver.create_window(self.connection, window.title)
        with self._lock:
            window.toolkit = self
            window.window_id = window_id
            window.application = application
            self._windows[window_id] = window
        if application is not None:
            application.register_window(window)
            # Section 5.4: "Whenever an application first opens a window,
            # we create an event dispatcher thread for this application."
            if isinstance(self.dispatcher, PerApplicationDispatcher):
                self.dispatcher.ensure_application_dispatcher(application)

    def unregister_window(self, window: Window) -> None:
        with self._lock:
            if window.window_id is not None:
                self._windows.pop(window.window_id, None)
        if window.window_id is not None:
            self.xserver.destroy_window(window.window_id)
        if window.application is not None:
            window.application.unregister_window(window)

    def record_draw(self, window: Window, op: dict) -> None:
        if window.window_id is not None:
            self.xserver.record_draw(window.window_id, op)

    def windows_of(self, application) -> list[Window]:
        with self._lock:
            return [w for w in self._windows.values()
                    if w.application is application]

    def close_windows_of(self, application) -> None:
        """Reaper path (Section 5.1): "close all windows that are
        associated with the application"."""
        for window in self.windows_of(application):
            window.dispose()
        if isinstance(self.dispatcher, PerApplicationDispatcher):
            self.dispatcher.shutdown_application(application)

    # -- conveniences -------------------------------------------------------------------

    def invoke_later(self, runnable, application=None):
        return self.dispatcher.invoke_later(runnable, application)

    def invoke_and_wait(self, runnable, application=None,
                        timeout: float = 5.0) -> None:
        self.dispatcher.invoke_and_wait(runnable, application, timeout)

    def window_id_by_title(self, title: str) -> Optional[int]:
        return self.xserver.find_window(title)

    def shutdown(self) -> None:
        self.dispatcher.shutdown()
        self.connection.close()
        if self._x_thread is not None:
            self._x_thread.join(2.0)
