"""The cluster scheduler: N VMs as one schedulable pool.

Section 8 of the paper extends the application notion across JVMs; this
package adds the missing management plane — membership, placement, and
failover — on top of the ``dist`` remote-execution protocol.  The
security story is unchanged: credentials travel with each launch and are
re-authenticated by the target VM (Section 5.2), and untrusted code can
be confined to designated *playground* nodes (Malkhi & Reiter's remote
playground model).
"""

from repro.cluster.registry import (
    DEAD,
    LIVE,
    SUSPECT,
    NodeInfo,
    NodeRegistry,
)
from repro.cluster.retry import backoff_delays, retry_call
from repro.cluster.scheduler import (
    LeastLoadedPolicy,
    LocalityPolicy,
    PlacementError,
    PlacementPolicy,
    RoundRobinPolicy,
    Scheduler,
)
from repro.cluster.spawn import Cluster, ClusterApplication

__all__ = [
    "LIVE", "SUSPECT", "DEAD",
    "NodeInfo", "NodeRegistry",
    "backoff_delays", "retry_call",
    "PlacementPolicy", "RoundRobinPolicy", "LeastLoadedPolicy",
    "LocalityPolicy", "PlacementError", "Scheduler",
    "Cluster", "ClusterApplication",
]
