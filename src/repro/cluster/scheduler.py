"""Placement: which node runs the next application.

The scheduler is deliberately a pure function of the registry — it holds
no connections and spawns nothing.  :meth:`Scheduler.place` filters the
live membership (playground-only for untrusted code, per Malkhi &
Reiter's remote-playground rule), asks the chosen policy to rank the
survivors, records the decision (``cluster.placements`` counter plus a
bounded in-memory log for ``/proc/cluster/placements``), and hands back a
:class:`~repro.cluster.registry.NodeInfo`.  Actually launching on that
node — and retrying elsewhere when it turns out to be dead — is the
spawn layer's job.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional, Sequence

from repro.jvm.errors import IllegalArgumentException, JavaException
from repro.cluster.registry import NodeInfo, NodeRegistry
from repro.super import faults


class PlacementError(JavaException):
    """No eligible node for this launch (empty pool, or the untrusted
    flag ruled out every live node)."""


class PlacementPolicy:
    """Ranks eligible nodes; ``choose`` returns the winner."""

    name = "policy"

    def choose(self, nodes: Sequence[NodeInfo],
               class_name: str) -> NodeInfo:  # pragma: no cover - abstract
        raise NotImplementedError


class RoundRobinPolicy(PlacementPolicy):
    """Rotate through the eligible nodes in stable (name) order.

    The cursor advances once per placement regardless of which nodes were
    eligible, so a pool of three gets an even 1/3 split under sustained
    load even as membership shifts.
    """

    name = "round-robin"

    def __init__(self):
        self._cursor = 0
        self._lock = threading.Lock()

    def choose(self, nodes: Sequence[NodeInfo], class_name: str) -> NodeInfo:
        with self._lock:
            index = self._cursor % len(nodes)
            self._cursor += 1
        return nodes[index]


class LeastLoadedPolicy(PlacementPolicy):
    """Pick the node with the lowest reported load (live apps + AWT queue
    depth, both straight from the worker's telemetry gauges); names break
    ties so the choice is deterministic."""

    name = "least-loaded"

    def choose(self, nodes: Sequence[NodeInfo], class_name: str) -> NodeInfo:
        return min(nodes, key=lambda n: (n.load_score(), n.name))


class LocalityPolicy(PlacementPolicy):
    """Prefer a node whose host already publishes the class material
    (the launch resolves locally instead of over the fabric); fall back
    to round-robin across the whole pool otherwise."""

    name = "locality"

    def __init__(self):
        self._fallback = RoundRobinPolicy()

    def choose(self, nodes: Sequence[NodeInfo], class_name: str) -> NodeInfo:
        local = [n for n in nodes if class_name in n.classes]
        if local:
            return min(local, key=lambda n: (n.load_score(), n.name))
        return self._fallback.choose(nodes, class_name)


#: How many placement decisions /proc/cluster/placements remembers.
PLACEMENT_LOG_SIZE = 256


class Scheduler:
    """The placement engine: policies + the decision log."""

    def __init__(self, registry: NodeRegistry, metrics=None):
        self.registry = registry
        self.metrics = metrics if metrics is not None else registry.metrics
        self._policies: dict[str, PlacementPolicy] = {}
        self._placements: deque = deque(maxlen=PLACEMENT_LOG_SIZE)
        self._seq = 0
        self._lock = threading.Lock()
        for policy in (RoundRobinPolicy(), LeastLoadedPolicy(),
                       LocalityPolicy()):
            self.register_policy(policy)

    def register_policy(self, policy: PlacementPolicy) -> None:
        self._policies[policy.name] = policy

    def policy_names(self) -> list[str]:
        return sorted(self._policies)

    def place(self, class_name: str, policy: str = "round-robin",
              untrusted: bool = False, exclude: Sequence[str] = (),
              user: str = "") -> NodeInfo:
        """Pick a live node for ``class_name`` or raise PlacementError.

        ``untrusted`` restricts the pool to playground nodes — untrusted
        code never lands on a general worker, even when the playgrounds
        are busier.  ``exclude`` removes nodes a failover already tried.
        """
        # Fault point: "the next placement of this class fails" — the
        # deterministic way to drive the spawn layer's retry/backoff.
        faults.hit(faults.POINT_CLUSTER_PLACE, class_name=class_name,
                   policy=policy)
        chooser = self._policies.get(policy)
        if chooser is None:
            raise IllegalArgumentException(
                f"unknown placement policy {policy!r} "
                f"(have: {', '.join(self.policy_names())})")
        excluded = set(exclude)
        eligible = [n for n in self.registry.live_nodes()
                    if n.name not in excluded
                    and (n.playground or not untrusted)]
        if not eligible:
            pool = "playground nodes" if untrusted else "live nodes"
            raise PlacementError(
                f"no eligible {pool} for {class_name} "
                f"(policy={policy}, excluded={sorted(excluded) or 'none'})")
        node = chooser.choose(eligible, class_name)
        self._record(class_name, policy, node, user, untrusted)
        return node

    def _record(self, class_name: str, policy: str, node: NodeInfo,
                user: str, untrusted: bool) -> None:
        with self._lock:
            self._seq += 1
            self._placements.append({
                "seq": self._seq, "class": class_name, "policy": policy,
                "node": node.name, "user": user or "-",
                "untrusted": untrusted})
        self.metrics.counter("cluster.placements", policy=policy,
                             node=node.name).inc()

    def placements(self) -> list[dict]:
        """The recent decision log, oldest first (procfs reads this)."""
        with self._lock:
            return list(self._placements)
