"""Cluster membership: the node registry, its agent, and the server.

Section 8 of the paper imagines "an application as a set of threads ...
extended to include threads of other JVM's, possibly on other hosts"; the
``dist`` package reproduces one hop of that.  This module turns N such
JVMs into a *pool* with observable membership:

* :class:`NodeRegistry` — the controller-side table of worker nodes.  A
  node is ``live`` while its heartbeats arrive, ``suspect`` after
  ``suspect_after`` seconds of silence, and ``dead`` after ``dead_after``
  (at which point ``on_node_dead`` callbacks fire, which is what drives
  re-placement of launches in :mod:`repro.cluster.spawn`).  The clock is
  injectable so membership tests are deterministic.
* ``cluster.ClusterAgent`` — an ordinary application run on every worker
  VM.  It connects to the registry over :mod:`repro.net.fabric`, sends a
  registration frame, then heartbeats carrying live load gauges from the
  worker's own :class:`~repro.telemetry.TelemetryHub` (``apps.live`` and
  AWT queue depth) plus the class material its host publishes (feeding
  the locality placement policy).
* ``cluster.RegistryServer`` — the controller-side application that
  accepts agent connections and feeds their frames into the registry.

The credential model is unchanged from Section 5.2: the registry tracks
*where* work can run; identity still never travels — every spawn
re-authenticates against the target VM's own user database.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.cluster.retry import retry_call
from repro.dist.pool import pool_for
from repro.dist.protocol import FrameChannel
from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import (
    IOException,
    SocketException,
    UnknownHostException,
)
from repro.jvm.threads import JThread, checkpoint
from repro.net.sockets import ServerSocket
from repro.security import access
from repro.security.codesource import CodeSource

#: Node states, in order of decay.
LIVE = "live"
SUSPECT = "suspect"
DEAD = "dead"

#: Default registry port (inside the 7000-7999 cluster port range).
DEFAULT_REGISTRY_PORT = 7210

AGENT_CLASS_NAME = "cluster.ClusterAgent"
AGENT_CODE_SOURCE = CodeSource(
    "file:/usr/local/java/tools/clusterd/ClusterAgent.class")

SERVER_CLASS_NAME = "cluster.RegistryServer"
SERVER_CODE_SOURCE = CodeSource(
    "file:/usr/local/java/tools/clusterd/RegistryServer.class")


class NodeInfo:
    """One worker VM as the controller sees it."""

    def __init__(self, name: str, port: int, playground: bool,
                 registered_at: float):
        self.name = name
        self.port = port
        self.playground = playground
        self.state = LIVE
        self.registered_at = registered_at
        self.last_beat = registered_at
        self.beats = 0
        #: Last reported load gauges (``apps``, ``awt``), from the worker's
        #: own telemetry hub.
        self.load: dict = {}
        #: Class names the worker's host publishes (locality policy input).
        self.classes: set[str] = set()

    def load_score(self) -> int:
        """The least-loaded ordering key: live apps + AWT queue depth."""
        return int(self.load.get("apps", 0)) + int(self.load.get("awt", 0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "playground" if self.playground else "worker"
        return (f"NodeInfo({self.name!r}, {self.state}, port={self.port}, "
                f"{role}, beats={self.beats})")


class NodeRegistry:
    """The controller's membership table and failure detector.

    Pure bookkeeping — no threads of its own.  The registry server drives
    :meth:`sweep` periodically; tests drive it directly with an injected
    clock.  All telemetry lands in the supplied metrics registry
    (``cluster.nodes.live``, ``cluster.heartbeats``, and the
    ``cluster.heartbeat.latency`` inter-beat histogram).
    """

    def __init__(self, metrics=None, suspect_after: float = 1.5,
                 dead_after: float = 3.0,
                 clock: Optional[Callable[[], float]] = None):
        if metrics is None:
            from repro.telemetry import GLOBAL_HUB
            metrics = GLOBAL_HUB.metrics
        self.metrics = metrics
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self._clock = clock if clock is not None else time.monotonic
        self._nodes: dict[str, NodeInfo] = {}
        self._lock = threading.RLock()
        #: Fired (outside the lock) with the NodeInfo each time a node
        #: transitions to dead — the spawn layer's re-placement trigger.
        self.on_node_dead: list[Callable[[NodeInfo], None]] = []

    # -- writes (registration and heartbeats) ---------------------------------

    def register(self, name: str, port: int = 7100,
                 playground: bool = False, load: Optional[dict] = None,
                 classes=None) -> NodeInfo:
        """Add (or revive) a node.  Re-registration resets it to live."""
        now = self._clock()
        with self._lock:
            node = self._nodes.get(name)
            if node is None:
                node = NodeInfo(name, port, playground, now)
                self._nodes[name] = node
            node.port = port
            node.playground = playground
            node.state = LIVE
            node.last_beat = now
            if load:
                node.load.update(load)
            if classes is not None:
                node.classes = set(classes)
        self.metrics.counter("cluster.registrations").inc()
        self._update_gauges()
        return node

    def heartbeat(self, name: str, load: Optional[dict] = None,
                  classes=None) -> bool:
        """Record one beat; returns False for unknown or dead nodes
        (the agent should re-register)."""
        now = self._clock()
        with self._lock:
            node = self._nodes.get(name)
            if node is None or node.state == DEAD:
                return False
            gap = now - node.last_beat
            node.last_beat = now
            node.beats += 1
            if load:
                node.load.update(load)
            if classes is not None:
                node.classes = set(classes)
            revived = node.state == SUSPECT
            if revived:
                node.state = LIVE
        self.metrics.counter("cluster.heartbeats").inc()
        self.metrics.histogram("cluster.heartbeat.latency").observe(gap)
        if revived:
            self._update_gauges()
        return True

    # -- the failure detector -------------------------------------------------

    def sweep(self, now: Optional[float] = None) -> list[NodeInfo]:
        """Age every node; returns the nodes that just died."""
        now = now if now is not None else self._clock()
        newly_dead: list[NodeInfo] = []
        changed = False
        with self._lock:
            for node in self._nodes.values():
                if node.state == DEAD:
                    continue
                silence = now - node.last_beat
                if silence > self.dead_after:
                    node.state = DEAD
                    newly_dead.append(node)
                    changed = True
                elif silence > self.suspect_after:
                    if node.state != SUSPECT:
                        node.state = SUSPECT
                        changed = True
        if changed:
            self._update_gauges()
        for node in newly_dead:
            self._node_died(node)
        return newly_dead

    def mark_dead(self, name: str, reason: str = "") -> None:
        """Declare a node dead out-of-band (a failed spawn connect)."""
        with self._lock:
            node = self._nodes.get(name)
            if node is None or node.state == DEAD:
                return
            node.state = DEAD
        self._update_gauges()
        self._node_died(node, reason)

    def _node_died(self, node: NodeInfo, reason: str = "") -> None:
        self.metrics.counter("cluster.node.deaths").inc()
        for callback in list(self.on_node_dead):
            try:
                callback(node)
            except Exception:  # noqa: BLE001 - detector survives callbacks
                pass

    # -- reads ----------------------------------------------------------------

    def find(self, name: str) -> Optional[NodeInfo]:
        with self._lock:
            return self._nodes.get(name)

    def nodes(self) -> list[NodeInfo]:
        with self._lock:
            return sorted(self._nodes.values(), key=lambda n: n.name)

    def live_nodes(self) -> list[NodeInfo]:
        with self._lock:
            return sorted((n for n in self._nodes.values()
                           if n.state == LIVE), key=lambda n: n.name)

    def counts(self) -> dict[str, int]:
        with self._lock:
            totals = {LIVE: 0, SUSPECT: 0, DEAD: 0}
            for node in self._nodes.values():
                totals[node.state] += 1
            return totals

    def _update_gauges(self) -> None:
        with self._lock:
            live = sum(1 for n in self._nodes.values() if n.state == LIVE)
            known = len(self._nodes)
        self.metrics.gauge("cluster.nodes.live").set(live)
        self.metrics.gauge("cluster.nodes.known").set(known)

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)


# --------------------------------------------------------------------------
# cluster.ClusterAgent — runs on every worker VM
# --------------------------------------------------------------------------

def build_agent_material() -> ClassMaterial:
    material = ClassMaterial(
        AGENT_CLASS_NAME, code_source=AGENT_CODE_SOURCE,
        doc="Cluster membership agent: registers this VM with the "
            "controller and heartbeats its load gauges.")

    @material.member
    def main(jclass, ctx, args):
        if not args:
            ctx.stderr.println(
                "usage: clusteragent registry-host [-P registry-port] "
                "[-r rexec-port] [-i interval] [--playground]")
            return 2
        registry_host = args[0]
        registry_port = DEFAULT_REGISTRY_PORT
        rexec_port = 7100
        interval = 0.5
        playground = False
        rest = list(args[1:])
        while rest:
            flag = rest.pop(0)
            if flag == "-P" and rest:
                registry_port = int(rest.pop(0))
            elif flag == "-r" and rest:
                rexec_port = int(rest.pop(0))
            elif flag == "-i" and rest:
                interval = float(rest.pop(0))
            elif flag == "--playground":
                playground = True
            else:
                ctx.stderr.println(f"clusteragent: unknown option {flag}")
                return 2

        hostname = ctx.vm.machine.hostname
        metrics = ctx.vm.telemetry.metrics

        def load_report() -> dict:
            return {"apps": int(metrics.total("apps.live")),
                    "awt": int(metrics.total("awt.queue.depth"))}

        def published() -> list[str]:
            try:
                return ctx.vm.network.resolve(hostname).published_names()
            except UnknownHostException:
                return []

        pool = pool_for(ctx.vm)

        def connect_and_register():
            # The agent asserts its own connect grant (checked on pool
            # hits too); registration waits out a controller that is
            # still booting (bounded backoff).  Heartbeats ride the
            # VM-wide channel pool, so a reconnecting agent reuses a
            # parked registry connection instead of redialling.
            pooled = retry_call(
                lambda: access.do_privileged(
                    lambda: pool.acquire(ctx, registry_host,
                                         registry_port)),
                retry_on=(SocketException, UnknownHostException),
                attempts=6, initial=0.05, maximum=0.5)
            try:
                pooled.channel.send({
                    "t": "reg", "node": hostname, "port": rexec_port,
                    "playground": playground, "load": load_report(),
                    "classes": published()})
            except IOException as exc:
                pooled.close()
                raise SocketException(f"registration failed: {exc}")
            return pooled

        try:
            pooled = connect_and_register()
        except (SocketException, UnknownHostException) as exc:
            ctx.stderr.println(f"clusteragent: cannot reach registry: {exc}")
            return 1
        ctx.stdout.println(
            f"clusteragent: {hostname} joined {registry_host}:"
            f"{registry_port} (rexec {rexec_port}"
            f"{', playground' if playground else ''})")
        seq = 0
        try:
            while True:
                checkpoint()
                JThread.sleep(interval)
                seq += 1
                frame = {"t": "hb", "node": hostname, "seq": seq,
                         "load": load_report(), "classes": published()}
                try:
                    pooled.channel.send(frame)
                except IOException:
                    # Registry connection lost: drop every pooled channel
                    # to the registry, then try one reconnect round (same
                    # bounded backoff), else report and exit — the sweep
                    # will declare this node dead.
                    pooled.close()
                    pool.invalidate(registry_host, registry_port)
                    try:
                        pooled = connect_and_register()
                    except (SocketException, UnknownHostException) as exc:
                        ctx.stderr.println(
                            f"clusteragent: registry lost: {exc}")
                        return 1
        finally:
            pooled.release()

    return material


# --------------------------------------------------------------------------
# cluster.RegistryServer — runs on the controller VM
# --------------------------------------------------------------------------

def build_server_material() -> ClassMaterial:
    material = ClassMaterial(
        SERVER_CLASS_NAME, code_source=SERVER_CODE_SOURCE,
        doc="Cluster registry server: accepts agent heartbeats and drives "
            "the membership sweep.")

    @material.member
    def main(jclass, ctx, args):
        port = int(args[0]) if args else DEFAULT_REGISTRY_PORT
        sweep_interval = float(args[1]) if len(args) > 1 else 0.2
        cluster = ctx.vm.cluster
        if cluster is None:
            ctx.stderr.println("clusterd: no cluster attached to this VM")
            return 1
        registry = cluster.registry
        server = access.do_privileged(lambda: ServerSocket(ctx, port))
        ctx.stdout.println(f"clusterd: registry listening on port {port}")

        def sweeper() -> None:
            while True:
                JThread.sleep(sweep_interval)
                registry.sweep()

        JThread(target=sweeper, name="cluster-sweeper",
                daemon=True).start()

        def serve(socket) -> None:
            # A FrameChannel per agent connection: bulk buffered reads
            # (one pipe lock per chunk of heartbeats, not per byte) and
            # per-frame sniffing, so binary-framing agents would be
            # understood too.
            channel = FrameChannel(socket.input, socket.output)
            try:
                while True:
                    frame = channel.recv()
                    if frame is None:
                        return
                    kind = frame.get("t")
                    node = str(frame.get("node", ""))
                    if kind == "reg" and node:
                        registry.register(
                            node, port=int(frame.get("port", 7100)),
                            playground=bool(frame.get("playground")),
                            load=frame.get("load"),
                            classes=frame.get("classes"))
                    elif kind == "hb" and node:
                        registry.heartbeat(node, load=frame.get("load"),
                                           classes=frame.get("classes"))
            except IOException:
                pass  # a dropped agent is the sweep's business, not ours
            finally:
                socket.close()

        try:
            while True:
                checkpoint()
                try:
                    socket = server.accept(timeout=0.2)
                except SocketException:
                    continue  # accept timeout: poll the stop flag
                JThread(target=lambda s=socket: serve(s),
                        name="cluster-reg-conn", daemon=True).start()
        finally:
            server.close()

    return material
