"""The cluster spawn API: place, launch, relay — and re-place on death.

:class:`Cluster` is the controller-side object tying the subsystem
together: it owns the :class:`~repro.cluster.registry.NodeRegistry` and
:class:`~repro.cluster.scheduler.Scheduler`, runs the registry server on
its own VM, and enrols worker VMs (:meth:`Cluster.join` starts the rexec
daemon and the cluster agent over there).

:meth:`Cluster.exec` is the paper's ``Application.exec`` lifted one level
up: pick a node per policy, launch through the existing ``dist`` protocol
(credentials travel with the request and are re-checked by the *target*
VM's user database — identity never travels, Section 5.2), and return a
:class:`ClusterApplication` that honours the local ``Application``
lifecycle surface (``wait_for``, ``destroy``, exit code, output relay).

Failover lives in the proxy, not the scheduler: ``wait_for`` uses the
registry as its failure detector.  While the remote side is silent it
waits in short slices and checks the target node's membership state
between slices; a node declared dead — or a transport loss, or a
suspicious kill-code during node death — triggers re-placement of the
launch on a surviving node (bounded by ``failover_attempts``).
"""

from __future__ import annotations

import threading
import time
import warnings
import weakref
from typing import Optional

from repro.cluster.registry import (
    DEAD,
    DEFAULT_REGISTRY_PORT,
    AGENT_CLASS_NAME,
    SERVER_CLASS_NAME,
    NodeRegistry,
)
from repro.cluster.retry import retry_call
from repro.cluster.scheduler import PlacementError, Scheduler
from repro.core.application import (
    KILLED_EXIT_CODE,
    Application,
    ExitStatus,
)
from repro.core.execspec import ExecSpec
from repro.dist.client import RemoteApplication
from repro.jvm.errors import (
    IllegalStateException,
    NodeUnavailableException,
    RemoteException,
    UnknownHostException,
)
from repro.jvm.threads import JThread


class ClusterApplication:
    """A cluster launch: an ``Application``-shaped handle whose remote
    part may move between nodes.

    ``placements`` lists every node the launch ran on, in order; a length
    greater than one means failover happened.
    """

    def __init__(self, cluster: "Cluster", ctx, class_name: str,
                 args: Optional[list[str]], user: str, password: str,
                 policy: str, untrusted: bool, stdout, stderr,
                 limits=None, record: bool = False,
                 phase: Optional[str] = None):
        self._cluster = cluster
        self._ctx = ctx
        self.class_name = class_name
        self.args = list(args or [])
        self._user = user
        self._password = password
        self.policy = policy
        self.untrusted = untrusted
        self._stdout = stdout
        self._stderr = stderr
        #: ResourceLimits shipped with every (re)placement and enforced
        #: by the target VM — the fix for limits silently dropping on
        #: the cluster path.
        self.limits = limits
        #: Learning mode / launch-phase override, shipped with every
        #: (re)placement just like limits.
        self.record = record
        self.phase = phase
        #: Node names this launch has been placed on, in order.
        self.placements: list[str] = []
        self._past_output: list[str] = []
        self._destroy_requested = False
        self._completed = False
        self._in_failover = False
        self._remote: Optional[RemoteApplication] = None
        # Failover can be triggered by a waiter's slice loop AND by the
        # registry's death callback; the lock (plus the incarnation check
        # in _failover_from) makes sure exactly one of them relaunches.
        self._lock = threading.RLock()
        self._launch()

    # -- placement + launch ---------------------------------------------------

    def _launch(self) -> None:
        """Place and connect, trying further nodes while targets are dead.

        Placement itself retries with backoff (a "queued" launch waiting
        for the pool to gain a node); a placed-but-unreachable node is
        marked dead and excluded, then placement runs again.
        """
        cluster = self._cluster
        last_error: Optional[Exception] = None
        for _ in range(max(1, cluster.failover_attempts)):
            try:
                node = retry_call(
                    lambda: cluster.scheduler.place(
                        self.class_name, policy=self.policy,
                        untrusted=self.untrusted, user=self._user),
                    retry_on=PlacementError,
                    attempts=cluster.placement_attempts,
                    initial=cluster.placement_backoff,
                    maximum=cluster.placement_backoff * 4)
            except PlacementError:
                raise
            try:
                with cluster.mvm.host_session("cluster-spawn"):
                    self._remote = RemoteApplication(
                        self._ctx, node.name, node.port, self._user,
                        self._password, self.class_name, self.args,
                        stdout=self._stdout, stderr=self._stderr,
                        limits=self.limits, record=self.record,
                        phase=self.phase)
                self.placements.append(node.name)
                return
            except NodeUnavailableException as exc:
                # The registry believed in this node but the fabric does
                # not: declare it dead and let placement try the rest.
                last_error = exc
                cluster.registry.mark_dead(node.name, reason=str(exc))
                cluster.metrics.counter("cluster.failovers").inc()
        raise NodeUnavailableException(
            f"no node could run {self.class_name} "
            f"(tried {self.placements or 'none'}): {last_error}")

    def _failover_from(self, remote: RemoteApplication,
                       mark_dead_reason: Optional[str] = None) -> bool:
        """Re-place the launch iff ``remote`` is still the live incarnation.

        Every failover trigger — a waiter's slice loop, the transport-lost
        path, the registry's death callback — funnels through here, so a
        race between them relaunches exactly once: the loser sees a newer
        ``self._remote`` (or the in-progress flag, since ``mark_dead``
        fires the death callbacks synchronously on this very thread) and
        backs off.
        """
        with self._lock:
            if (self._remote is not remote or self._destroy_requested
                    or self._completed or self._in_failover):
                return False
            self._in_failover = True
            try:
                if mark_dead_reason is not None:
                    self._cluster.registry.mark_dead(
                        self.node, reason=mark_dead_reason)
                self._past_output.append(remote.output_text())
                remote.close()
                self._cluster.metrics.counter("cluster.failovers").inc()
                self._launch()
            finally:
                self._in_failover = False
            return True

    def _on_node_dead(self, node_name: str) -> None:
        """Registry death callback: our node is gone — move, proactively.

        Runs even when nobody is blocked in ``wait_for``, so a fire-and-
        forget launch still migrates off a dead node.
        """
        remote = self._remote
        if remote is None or self.node != node_name:
            return
        if (remote.terminated and not remote.transport_lost
                and remote.error is None
                and remote.exit_code is not None
                and remote.exit_code != KILLED_EXIT_CODE):
            return  # finished for real before the node died
        self._failover_from(remote)

    def _node_looks_dead(self, node_name: str) -> bool:
        node = self._cluster.registry.find(node_name)
        return node is None or node.state == DEAD

    def _node_dies_within(self, node_name: str, grace: float) -> bool:
        """Poll the registry briefly: did that node leave the living?"""
        deadline = time.monotonic() + grace
        while True:
            if self._node_looks_dead(node_name):
                return True
            if time.monotonic() >= deadline:
                return False
            JThread.sleep(0.05)

    # -- the Application lifecycle surface ------------------------------------

    @property
    def node(self) -> Optional[str]:
        """Where the launch currently runs (the last placement)."""
        return self.placements[-1] if self.placements else None

    def wait_for(self, timeout: Optional[float] = None) -> Optional[int]:
        """Wait out the launch wherever it ends up running.

        Returns the exit code, or None on timeout.  Transport loss and
        node death re-place the launch transparently (the clock keeps
        running across failovers); genuine remote errors — bad
        credentials, unknown class — raise :class:`RemoteException` as
        the plain ``dist`` client does.
        """
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        while True:
            remaining = None if deadline is None \
                else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                return None
            wait_slice = 0.2 if remaining is None \
                else min(0.2, max(remaining, 0.01))
            remote = self._remote
            node_name = self.node
            try:
                code = remote.wait_for(wait_slice)
            except RemoteException:
                if remote.transport_lost and not self._destroy_requested:
                    # The connection died under us — the dist layer's
                    # typed signal that the node (not the request) failed.
                    self._failover_from(remote,
                                        mark_dead_reason="transport lost")
                    continue
                raise
            if self._remote is not remote:
                continue  # the death callback moved us mid-slice
            if code is not None:
                if (code == KILLED_EXIT_CODE
                        and not self._destroy_requested
                        and self._node_dies_within(
                            node_name, self._cluster.failover_grace)):
                    # A dying worker VM destroys its applications on the
                    # way down, so the daemon reports "killed" just before
                    # the heartbeats stop.  Nobody here asked for a kill:
                    # treat it as node death, not a result.
                    self._failover_from(remote)
                    continue
                if self._remote is remote:
                    self._completed = True
                    return code
                continue
            # Slice elapsed with the remote silent: consult the failure
            # detector before waiting more.
            if self._node_looks_dead(node_name) \
                    and not self._destroy_requested:
                self._failover_from(remote)

    def wait(self, timeout: Optional[float] = None) -> Optional[ExitStatus]:
        """Typed wait: exit code, cause, and the failover count.

        ``restarts`` counts re-placements (the cluster's analogue of a
        supervisor respawn); an
        :class:`~repro.super.admission.AdmissionRejected` from the
        target VM propagates typed — a saturated node is alive, so it
        never triggers failover.
        """
        code = self.wait_for(timeout)
        if code is None:
            return None
        cause = "killed" if code == KILLED_EXIT_CODE else None
        return ExitStatus(code=code, signal_like_cause=cause,
                          restarts=max(0, len(self.placements) - 1))

    def destroy(self) -> None:
        """Ask the current node to destroy the application."""
        self._destroy_requested = True
        if self._remote is not None:
            self._remote.destroy()

    @property
    def terminated(self) -> bool:
        return self._remote is not None and self._remote.terminated

    @property
    def exit_code(self) -> Optional[int]:
        return self._remote.exit_code if self._remote is not None else None

    def output_text(self) -> str:
        """Everything the launch wrote, across all placements."""
        current = self._remote.output_text() if self._remote else ""
        return "".join(self._past_output) + current

    def close(self) -> None:
        self._completed = True  # a closed handle never fails over
        self._cluster._active.discard(self)
        if self._remote is not None:
            self._remote.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ClusterApplication({self.class_name!r}, "
                f"node={self.node!r}, placements={len(self.placements)})")


class Cluster:
    """N VMs, one pool.  The controller-side face of the subsystem.

    The controller VM runs the registry server; each worker VM (booted on
    the *same* :class:`~repro.net.fabric.NetworkFabric`) is enrolled with
    :meth:`join`, which starts the rexec daemon and the heartbeat agent
    over there.  After that, :meth:`exec` places work anywhere.
    """

    def __init__(self, mvm, registry_port: int = DEFAULT_REGISTRY_PORT,
                 suspect_after: float = 1.5, dead_after: float = 3.0,
                 failover_attempts: int = 3, failover_grace: float = 1.0,
                 placement_attempts: int = 4,
                 placement_backoff: float = 0.1, clock=None):
        self.mvm = mvm
        self.vm = mvm.vm
        self.metrics = self.vm.telemetry.metrics
        self.registry_port = registry_port
        self.registry = NodeRegistry(metrics=self.metrics,
                                     suspect_after=suspect_after,
                                     dead_after=dead_after, clock=clock)
        self.scheduler = Scheduler(self.registry, metrics=self.metrics)
        self.failover_attempts = failover_attempts
        self.failover_grace = failover_grace
        self.placement_attempts = placement_attempts
        self.placement_backoff = placement_backoff
        self._server_app = None
        self._workers: list = []
        #: Launch handles eligible for proactive re-placement.
        self._active: "weakref.WeakSet[ClusterApplication]" = \
            weakref.WeakSet()
        self.registry.on_node_dead.append(self._invalidate_pooled_channels)
        self.registry.on_node_dead.append(self._replace_orphans)
        self.vm.cluster = self

    def _invalidate_pooled_channels(self, node) -> None:
        """Death callback: drop idle pooled channels to the dead node.

        Runs before the re-placement callback so a failover launch never
        draws a parked connection to the very node that just died.
        """
        from repro.dist.pool import existing_pool
        pool = existing_pool(self.vm)
        if pool is not None:
            pool.invalidate(node.name)

    def _replace_orphans(self, node) -> None:
        """Death callback: move every launch stranded on ``node``.

        Relaunching involves placement backoff and socket work, so each
        orphan moves on its own (plain host) thread — the failure
        detector's sweep must never block behind a relaunch.
        """
        for application in list(self._active):
            if application.node == node.name:
                threading.Thread(
                    target=application._on_node_dead, args=(node.name,),
                    name=f"cluster-failover-{node.name}",
                    daemon=True).start()

    # -- membership -----------------------------------------------------------

    def start(self, sweep_interval: float = 0.2) -> "Cluster":
        """Run the registry server on the controller VM."""
        if self._server_app is not None:
            return self
        self._server_app = Application._exec_spec(
            ExecSpec(SERVER_CLASS_NAME,
                     (str(self.registry_port), str(sweep_interval))),
            vm=self.vm, parent=self.mvm.initial)
        self._await_listener(self.vm.machine.hostname, self.registry_port)
        return self

    def join(self, worker_mvm, rexec_port: int = 7100,
             playground: bool = False, interval: float = 0.3,
             timeout: float = 5.0) -> None:
        """Enrol a worker VM: rexec daemon + heartbeat agent.

        The worker must share the controller's network fabric (boot it
        with ``network=controller_fabric``).
        """
        if self._server_app is None:
            raise IllegalStateException(
                "start() the cluster before join()ing workers")
        hostname = worker_mvm.vm.machine.hostname
        daemon = Application._exec_spec(
            ExecSpec("dist.RexecDaemon", (str(rexec_port),)),
            vm=worker_mvm.vm, parent=worker_mvm.initial)
        self._await_listener(hostname, rexec_port, timeout=timeout)
        agent_args = [self.vm.machine.hostname,
                      "-P", str(self.registry_port),
                      "-r", str(rexec_port), "-i", str(interval)]
        if playground:
            agent_args.append("--playground")
        agent = Application._exec_spec(
            ExecSpec(AGENT_CLASS_NAME, tuple(agent_args)),
            vm=worker_mvm.vm, parent=worker_mvm.initial)
        self._workers.append((worker_mvm, daemon, agent))
        from repro.sched.timers import poll_until
        if not poll_until(lambda: self.registry.find(hostname) is not None,
                          timeout=timeout):
            raise IllegalStateException(
                f"worker {hostname} never registered")

    def _await_listener(self, host: str, port: int,
                        timeout: float = 5.0) -> None:
        fabric = self.vm.network

        def ready() -> bool:
            try:
                return fabric.resolve(host)._listener(port) is not None
            except UnknownHostException:
                return False

        from repro.sched.timers import poll_until
        if not poll_until(ready, timeout=timeout):
            raise IllegalStateException(f"no listener on {host}:{port}")

    # -- spawning -------------------------------------------------------------

    def exec(self, class_name: str, args: Optional[list[str]] = None,
             user: str = "", password: str = "",
             policy: str = "round-robin", untrusted: bool = False,
             stdout=None, stderr=None, ctx=None,
             limits=None) -> ClusterApplication:
        """Deprecated shim: launch ``class_name`` somewhere in the pool.

        Prefer ``launch(ExecSpec(class_name, args,
        placement=Placement.cluster(policy, untrusted), ...))``.
        ``user``/``password`` are re-authenticated by the target VM —
        credentials travel, identity does not (Section 5.2).
        ``untrusted=True`` confines the launch to playground nodes.
        """
        warnings.warn(
            "Cluster.exec() is deprecated; use repro.launch(ExecSpec(..., "
            "placement=Placement.cluster(...)))",
            DeprecationWarning, stacklevel=2)
        from repro.core.execspec import Placement
        spec = ExecSpec(class_name, tuple(args or ()), user=user,
                        password=password, stdout=stdout, stderr=stderr,
                        limits=limits,
                        placement=Placement.cluster(policy=policy,
                                                    untrusted=untrusted))
        return self._exec_spec(spec, ctx=ctx)

    def _exec_spec(self, spec: ExecSpec, ctx=None) -> ClusterApplication:
        """The cluster launch choke point ``launch()`` routes through."""
        context = ctx if ctx is not None else self.mvm.initial.context()
        placement = spec.placement
        application = ClusterApplication(
            self, context, spec.class_name, list(spec.args),
            spec.user_name(), spec.password, placement.policy,
            placement.untrusted, spec.stdout, spec.stderr,
            limits=spec.limits, record=spec.record_policy,
            phase=spec.phase)
        self._active.add(application)
        return application

    # -- introspection (procfs and the coreutil read these) -------------------

    def render_nodes(self) -> str:
        lines = ["NODE\tSTATE\tPORT\tROLE\tBEATS\tAPPS\tAWT"]
        for node in self.registry.nodes():
            lines.append("\t".join([
                node.name, node.state, str(node.port),
                "playground" if node.playground else "worker",
                str(node.beats), str(node.load.get("apps", "-")),
                str(node.load.get("awt", "-"))]))
        return "\n".join(lines) + "\n"

    def render_placements(self) -> str:
        lines = ["SEQ\tCLASS\tPOLICY\tNODE\tUSER"]
        for entry in self.scheduler.placements():
            lines.append("\t".join([
                str(entry["seq"]), entry["class"], entry["policy"],
                entry["node"], entry["user"]]))
        return "\n".join(lines) + "\n"

    def shutdown_worker(self, worker_mvm) -> None:
        """Shut a worker VM down (the demo's node-kill switch)."""
        for index, (mvm, _daemon, _agent) in enumerate(self._workers):
            if mvm is worker_mvm:
                del self._workers[index]
                break
        worker_mvm.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        counts = self.registry.counts()
        return (f"Cluster(port={self.registry_port}, live={counts['live']}, "
                f"suspect={counts['suspect']}, dead={counts['dead']})")
