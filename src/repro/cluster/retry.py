"""Bounded retry with exponential backoff — the cluster's patience policy.

Both halves of the cluster use the same helper: heartbeat agents retry the
registry connection while the controller is still coming up, and the spawn
path retries placement while the pool is momentarily empty (a queued
launch waiting for a node).  Two properties matter:

* **No busy-wait.**  Every retry sleeps through an interruptible stop
  point (:meth:`~repro.jvm.threads.JThread.sleep`), so a stopping
  application never spins and the reaper can always make progress.
* **Deterministic in tests.**  The sleep function is injectable; tests
  pass a recorder and assert the exact delay sequence instead of racing
  wall-clock time.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.jvm.errors import IllegalArgumentException
from repro.jvm.threads import JThread


def backoff_delays(attempts: int, initial: float = 0.05,
                   factor: float = 2.0,
                   maximum: float = 1.0) -> Iterator[float]:
    """The delay schedule between ``attempts`` tries: geometric, capped.

    Yields ``attempts - 1`` values (there is no sleep after the last try).
    """
    delay = initial
    for _ in range(max(0, attempts - 1)):
        yield min(delay, maximum)
        delay *= factor


def retry_call(fn: Callable, retry_on, attempts: int = 4,
               initial: float = 0.05, factor: float = 2.0,
               maximum: float = 1.0,
               sleep: Optional[Callable[[float], None]] = None,
               on_retry: Optional[Callable] = None):
    """Call ``fn`` up to ``attempts`` times, backing off between tries.

    Only exceptions matching ``retry_on`` (a class or tuple) are retried;
    anything else — and the final failure — propagates to the caller.
    ``sleep`` defaults to the interruptible :meth:`JThread.sleep`;
    ``on_retry(attempt, exc)`` is invoked before each backoff sleep.
    """
    if attempts < 1:
        raise IllegalArgumentException("retry_call needs attempts >= 1")
    from repro.sched import timers
    do_sleep = sleep if sleep is not None else timers.sleep
    delays = backoff_delays(attempts, initial, factor, maximum)
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except retry_on as exc:
            if attempt >= attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            do_sleep(next(delays))
