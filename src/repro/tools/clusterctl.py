"""The ``cluster`` tool: inspect and drive the cluster from the shell.

Usage::

    cluster status
    cluster placements
    cluster exec [-p policy] [-l user] [--password pw] [--untrusted] \\
            class-or-command [args...]

``status`` and ``placements`` render the controller's membership table
and decision log (the same text as ``/proc/cluster/*``).  ``exec``
launches through the cluster scheduler: command names resolve through
the local tool path like ``rsh``, credentials default to the running
user's name plus the ``rsh.password`` application property, and the
launch inherits the cluster's failover behaviour — if the chosen node
dies mid-run, the tool's application simply lands somewhere else.
"""

from __future__ import annotations

from repro.cluster.scheduler import PlacementError
from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import (
    IllegalArgumentException,
    RemoteException,
    SecurityException,
)
from repro.security import access
from repro.security.codesource import CodeSource

CLASS_NAME = "tools.Cluster"
CODE_SOURCE = CodeSource("file:/usr/local/java/tools/cluster/Cluster.class")


def build_material() -> ClassMaterial:
    material = ClassMaterial(
        CLASS_NAME, code_source=CODE_SOURCE,
        doc="Cluster control: status, placements, scheduled exec.")

    @material.member
    def main(jclass, ctx, args):
        cluster = ctx.vm.cluster
        if cluster is None:
            ctx.stderr.println("cluster: this VM is not a cluster "
                               "controller")
            return 1
        if not args:
            ctx.stderr.println(
                "usage: cluster status | placements | "
                "exec [-p policy] [-l user] [--password pw] "
                "[--untrusted] command [args...]")
            return 2
        verb, *rest = args

        if verb == "status":
            counts = cluster.registry.counts()
            ctx.stdout.print(cluster.render_nodes())
            ctx.stdout.println(
                f"{counts['live']} live, {counts['suspect']} suspect, "
                f"{counts['dead']} dead; "
                f"{len(cluster.scheduler.placements())} recent placements")
            return 0

        if verb == "placements":
            ctx.stdout.print(cluster.render_placements())
            return 0

        if verb != "exec":
            ctx.stderr.println(f"cluster: unknown subcommand {verb!r}")
            return 2

        user = ctx.user.name if ctx.user is not None else ""
        password = ctx.app.properties.get_property("rsh.password", "") \
            if ctx.app is not None else ""
        policy = "round-robin"
        untrusted = False
        while rest and rest[0].startswith("-"):
            flag = rest.pop(0)
            if flag == "-p" and rest:
                policy = rest.pop(0)
            elif flag == "-l" and rest:
                user = rest.pop(0)
            elif flag == "--password" and rest:
                password = rest.pop(0)
            elif flag == "--untrusted":
                untrusted = True
            else:
                ctx.stderr.println(f"cluster: unknown option {flag}")
                return 2
        if not rest:
            ctx.stderr.println("cluster: exec needs a command")
            return 2
        command, *command_args = rest
        class_name = ctx.vm.tool_path.get(command, command)

        def run():
            # One privileged frame covers the whole launch *and* the wait:
            # a mid-wait failover relaunches under this tool's connect
            # grant, exactly like the original placement.
            from repro.core.execspec import ExecSpec, Placement
            application = cluster._exec_spec(
                ExecSpec(class_name, tuple(command_args), user=user,
                         password=password, stdout=ctx.stdout,
                         stderr=ctx.stderr,
                         placement=Placement.cluster(
                             policy=policy, untrusted=untrusted)),
                ctx=ctx)
            try:
                return application.wait_for(30)
            finally:
                application.close()

        try:
            code = access.do_privileged(run)
        except (PlacementError, IllegalArgumentException,
                SecurityException, RemoteException) as exc:
            ctx.stderr.println(f"cluster: {exc}")
            return 1
        return code if code is not None else 1

    return material
