"""The Appletviewer, ported to an application (Section 6.3).

    "we moved the Appletviewer, which is a built-in program distributed with
    JDK and normally run as system code, to become an application as defined
    in our framework.  More specifically, we moved the Appletviewer's
    classes off the system class path CLASSPATH, and this has the result
    that the classes are no longer automatically privileged.  Also, we
    replaced all System.exit() calls with Application.exit(). ...

    A significant difference is that we no longer need the Appletviewer's
    security manager.  Instead, the AppletClassLoader now implements the
    necessary methods to delegate permissions to the applets it loads, thus
    implementing the original Java sandbox security model.  For example, an
    applet will get the permission from the Appletviewer to connect back to
    its own host."

Applet contract (class material published on a network host): optional
members ``init(jclass, ctx, frame)``, ``start(jclass, ctx, frame)``,
``stop(jclass, ctx, frame)``, ``destroy(jclass, ctx, frame)``.  The applet
runs *inside the viewer's application* (its threads, its event queue), but
under its *own* protection domain — remote code source, sandbox
permissions only.
"""

from __future__ import annotations

from typing import Optional

from repro.awt.components import Frame
from repro.awt.events import WindowEvent
from repro.jvm.classloading import ClassLoader, ClassMaterial
from repro.jvm.errors import (
    ClassNotFoundException,
    IllegalArgumentException,
    JavaThrowable,
    UnknownHostException,
)
from repro.jvm.threads import JThread
from repro.lang.context import InvocationContext
from repro.security.codesource import CodeSource, ProtectionDomain
from repro.security.permissions import Permissions, SocketPermission

CLASS_NAME = "tools.AppletViewer"
CODE_SOURCE = CodeSource("file:/usr/local/java/tools/appletviewer/AppletViewer.class")


class AppletClassLoader(ClassLoader):
    """Loads applet code from a network host, delegating sandbox grants.

    The loader is the Section 6.3 mechanism: classes it defines carry the
    applet's *network* code source (so the Section 5.3 policy never gives
    them ``UserPermission``), plus the static permissions the viewer
    delegates — by default, connecting back to the origin host.
    """

    def __init__(self, parent: ClassLoader, host):
        sm = parent.vm.security_manager if parent.vm is not None else None
        if sm is not None:
            sm.check_create_class_loader()
        super().__init__(parent.registry, parent=parent,
                         name=f"applet:{host.name}")
        self.host = host

    def find_class(self, name: str):
        """Download the class material from the origin host."""
        material = self.host.fetch_class(name)
        return self.define_class(material)

    def domain_for(self, material: ClassMaterial) -> ProtectionDomain:
        code_source = material.code_source or CodeSource(
            f"{self.host.code_base()}{material.name}")
        delegated = Permissions([
            # "an applet will get the permission from the Appletviewer to
            # connect back to its own host."
            SocketPermission(f"{self.host.name}:1-65535",
                             "connect,resolve"),
        ])
        return ProtectionDomain(code_source, permissions=delegated,
                                policy=self.policy,
                                name=f"applet:{material.name}")


def parse_applet_url(url: str) -> tuple[str, str]:
    """Split ``http://host/classes/ClassName`` into (host, class name)."""
    if not url.startswith("http://"):
        raise IllegalArgumentException(f"not an applet URL: {url}")
    remainder = url[len("http://"):]
    host, _, path = remainder.partition("/")
    class_name = path.rsplit("/", 1)[-1]
    if not host or not class_name:
        raise IllegalArgumentException(f"malformed applet URL: {url}")
    return host, class_name


class AppletHandle:
    """The viewer's handle on one running applet."""

    def __init__(self, jclass, ctx: InvocationContext, frame: Frame):
        self.jclass = jclass
        self.ctx = ctx
        self.frame = frame
        self.started = False

    def _call(self, member: str) -> None:
        if self.jclass.has_method(member):
            self.jclass.invoke(member, self.ctx, self.frame)

    def init(self) -> None:
        self._call("init")

    def start(self) -> None:
        self._call("start")
        self.started = True

    def stop(self) -> None:
        if self.started:
            self._call("stop")
            self.started = False

    def destroy(self) -> None:
        self._call("destroy")


def load_applet(ctx: InvocationContext, url: str) -> AppletHandle:
    """Fetch, define, and frame an applet (shared by the viewer and tests)."""
    host_name, class_name = parse_applet_url(url)
    sm = ctx.vm.security_manager
    if sm is not None:
        sm.check_resolve(host_name)
    host = ctx.vm.network.resolve(host_name)
    # The viewer asserts its own createClassLoader grant: its launcher (a
    # shell, say) is on the inherited context and must not need it.
    from repro.security import access
    loader = access.do_privileged(
        lambda: AppletClassLoader(ctx.loader, host))
    jclass = loader.load_class(class_name)
    applet_ctx = InvocationContext(ctx.vm, loader, jclass, app=ctx.app)
    frame = Frame(f"Applet: {class_name}", name=f"applet-{class_name}")
    return AppletHandle(jclass, applet_ctx, frame)


def build_material() -> ClassMaterial:
    material = ClassMaterial(
        CLASS_NAME, code_source=CODE_SOURCE,
        doc="Runs applets from the network inside the sandbox (§6.3).")

    @material.member
    def main(jclass, ctx, args):
        wait = True
        urls = []
        for arg in args:
            if arg == "--no-wait":
                wait = False
            else:
                urls.append(arg)
        if not urls:
            ctx.stderr.println("usage: appletviewer [--no-wait] URL...")
            return 2
        handles: list[AppletHandle] = []
        for url in urls:
            try:
                handle = load_applet(ctx, url)
            except (IllegalArgumentException, UnknownHostException,
                    ClassNotFoundException) as exc:
                ctx.stderr.println(f"appletviewer: {exc}")
                return 1
            def on_window_event(event, handle=handle):
                if event.kind == WindowEvent.CLOSING:
                    handle.stop()
                    handle.destroy()
                    handle.frame.dispose()

            handle.frame.add_listener(WindowEvent, on_window_event)
            handle.frame.show(ctx.vm.toolkit)
            try:
                # Run the applet's lifecycle under the viewer's own
                # privileges: the delegated sandbox grants (connect-back)
                # intersect with the *viewer's* domain, not with whatever
                # launched the viewer.
                from repro.security import access
                access.do_privileged(handle.init)
                access.do_privileged(handle.start)
            except JavaThrowable as exc:
                ctx.stderr.println(f"appletviewer: applet error: {exc}")
            handles.append(handle)
        # "we replaced all System.exit() calls with Application.exit()"
        # (Section 6.3) — the viewer has shown windows, so its per-app
        # event dispatcher is alive and a plain return would not end it.
        from repro.core.application import Application
        if not wait:
            Application.exit(0)
        # Keep serving events until every applet frame has been closed.
        while any(not h.frame.disposed for h in handles):
            JThread.sleep(0.02)
        Application.exit(0)

    return material
