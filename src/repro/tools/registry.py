"""Installs the Section 6 tools onto a VM: class material + command path."""

from __future__ import annotations

from repro.cluster import registry as cluster_registry
from repro.dist import daemon as rexec_daemon
from repro.dist import rsh
from repro.tools import appletviewer, clusterctl, coreutils, login, \
    policygen, shell, terminal


def register_tools(vm) -> None:
    """Register every tool's class material and command-name mapping."""
    materials = list(coreutils.ALL_MATERIALS) + [
        shell.build_material(),
        login.build_material(),
        terminal.build_material(),
        appletviewer.build_material(),
        rexec_daemon.build_material(),
        rsh.build_material(),
        clusterctl.build_material(),
        policygen.build_material(),
        cluster_registry.build_agent_material(),
        cluster_registry.build_server_material(),
    ]
    for material in materials:
        if material.name not in vm.registry:
            vm.registry.register(material)
    vm.tool_path.update(coreutils.COMMANDS)
    vm.tool_path.update({
        "sh": shell.CLASS_NAME,
        "login": login.CLASS_NAME,
        "terminal": terminal.CLASS_NAME,
        "appletviewer": appletviewer.CLASS_NAME,
        "rexecd": rexec_daemon.CLASS_NAME,
        "rsh": rsh.CLASS_NAME,
        "cluster": clusterctl.CLASS_NAME,
        "policygen": policygen.CLASS_NAME,
        "clusteragent": cluster_registry.AGENT_CLASS_NAME,
        "clusterd": cluster_registry.SERVER_CLASS_NAME,
    })
