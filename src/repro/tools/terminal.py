"""The Java terminal of Section 6.2.

    "There are a number of reasons for implementing an independent Java
    terminal. ...  there is no standard way to turn off echoing of the
    underlying terminal (needed for password entry), or to provide
    functionality similar to the GNU readline library."

Three layers, matching the paper:

* :class:`TerminalDevice` — the simulated physical console: a keyboard
  buffer the test/user injects into, an output transcript, and the echo
  flag.  This plays the role of the real tty.
* :class:`Terminal` — the Java-side object with "a few methods to read from
  and write to the terminal, and to switch echoing on and off", plus the
  readline-style :meth:`read_string` with a history buffer.
* the ``tools.Terminal`` application — binds a device, points its own
  standard streams at the terminal, and spawns a child (login by default)
  that *inherits* those streams, exactly as described: "applications can
  just read and write to System.in and System.out (which are connected to
  the Java terminal, as inherited from the Terminal application itself)".

Applications that want "more control over the terminal" recover the
terminal object from their standard input via :meth:`Terminal.from_stream`
— and keep working on plain pipes when there is none (the ``cat`` case).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.io.streams import InputStream, OutputStream, PrintStream
from repro.jvm.classloading import ClassMaterial
from repro.sched.timers import wait_until
from repro.security.codesource import CodeSource

CLASS_NAME = "tools.Terminal"
CODE_SOURCE = CodeSource("file:/usr/local/java/tools/terminal/Terminal.class")


class TerminalDevice:
    """The simulated console hardware: keyboard in, transcript out."""

    def __init__(self, name: str = "console"):
        self.name = name
        self._keys: list[str] = []
        self._cond = threading.Condition()
        self._transcript: list[str] = []
        self.echo = True
        self.closed = False

    # -- the human side (tests, examples) ------------------------------------

    def type_text(self, text: str) -> None:
        """The user types ``text`` (echoed to the transcript if echo on)."""
        with self._cond:
            for char in text:
                self._keys.append(char)
                if self.echo:
                    self._transcript.append(char)
            self._cond.notify_all()

    def type_line(self, line: str) -> None:
        self.type_text(line + "\n")

    def transcript(self) -> str:
        """Everything visible on the screen so far."""
        with self._cond:
            return "".join(self._transcript)

    def wait_for_output(self, needle: str, timeout: float = 5.0) -> bool:
        """Poll until ``needle`` appears on the screen (test helper)."""
        from repro.sched.timers import poll_until
        return poll_until(lambda: needle in self.transcript(),
                          timeout=timeout)

    def hang_up(self) -> None:
        """The user disconnects; reads return end-of-stream."""
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    # -- the terminal side ------------------------------------------------------

    def read_char(self) -> Optional[str]:
        """Block for one keystroke; None when the device is hung up."""
        with self._cond:
            wait_until(self._cond,
                       lambda: self._keys or self.closed)
            if self._keys:
                return self._keys.pop(0)
            return None

    def write_output(self, text: str) -> None:
        with self._cond:
            self._transcript.append(text)

    def set_echo(self, enabled: bool) -> None:
        with self._cond:
            self.echo = enabled


class TerminalInputStream(InputStream):
    """Byte stream over the device keyboard; carries the Terminal handle."""

    def __init__(self, terminal: "Terminal"):
        super().__init__()
        self.terminal = terminal

    def read(self, size: int = -1) -> bytes:
        self._ensure_open()
        char = self.terminal.device.read_char()
        if char is None:
            return b""
        return char.encode("utf-8")


class TerminalOutputStream(OutputStream):
    """Byte stream onto the device screen; carries the Terminal handle."""

    def __init__(self, terminal: "Terminal"):
        super().__init__()
        self.terminal = terminal

    def write(self, payload: bytes) -> None:
        self._ensure_open()
        self.terminal.device.write_output(
            payload.decode("utf-8", errors="replace"))


class Terminal:
    """The terminal object of Section 6.2."""

    def __init__(self, device: TerminalDevice, history_size: int = 100):
        self.device = device
        self.history: list[str] = []
        self.history_size = history_size
        self.input = TerminalInputStream(self)
        self.output = PrintStream(TerminalOutputStream(self))

    # -- echo control (password entry) ------------------------------------------

    def turn_echo_off(self) -> None:
        self.device.set_echo(False)

    def turn_echo_on(self) -> None:
        self.device.set_echo(True)

    # -- basic I/O -----------------------------------------------------------------

    def write(self, text: str) -> None:
        self.device.write_output(text)

    def println(self, text: str = "") -> None:
        self.device.write_output(text + "\n")

    def _read_raw_line(self) -> Optional[str]:
        buffer: list[str] = []
        while True:
            char = self.device.read_char()
            if char is None:
                return "".join(buffer) if buffer else None
            if char == "\n":
                return "".join(buffer)
            if char == "\b":
                if buffer:
                    buffer.pop()
                continue
            buffer.append(char)

    # -- the advanced reader (readline/history, Section 6.2) -------------------------

    def read_string(self, prompt: str = "") -> Optional[str]:
        """Read a line with history expansion (``!!`` and ``!N``).

        Returns None on hang-up.  The shell uses this when connected to a
        terminal, "giving the user features like a history buffer".
        """
        if prompt:
            self.write(prompt)
        line = self._read_raw_line()
        if line is None:
            return None
        expanded = self._expand_history(line)
        if expanded != line:
            self.println(expanded)
        if expanded.strip():
            self.history.append(expanded)
            if len(self.history) > self.history_size:
                self.history.pop(0)
        return expanded

    def _expand_history(self, line: str) -> str:
        stripped = line.strip()
        if stripped == "!!":
            return self.history[-1] if self.history else ""
        if stripped.startswith("!") and stripped[1:].isdigit():
            index = int(stripped[1:]) - 1
            if 0 <= index < len(self.history):
                return self.history[index]
            return ""
        return line

    def read_password(self, prompt: str = "Password: ") -> Optional[str]:
        """Echo-off line read — "the login application uses the
        turnEchoOff method before asking for a password"."""
        self.turn_echo_off()
        try:
            if prompt:
                self.write(prompt)
            line = self._read_raw_line()
        finally:
            self.turn_echo_on()
            self.println()
        return line

    # -- discovery from standard streams --------------------------------------------

    @staticmethod
    def from_stream(stream) -> Optional["Terminal"]:
        """The terminal behind a standard stream, if any.

        "Other applications like cat only use the standard streams, and
        therefore also work if they are not run from a terminal (such as
        when they are used in a pipe)" — for those, this returns None.
        """
        target = stream
        seen = set()
        while target is not None and id(target) not in seen:
            seen.add(id(target))
            terminal = getattr(target, "terminal", None)
            if terminal is not None:
                return terminal
            target = getattr(target, "target", None) \
                or getattr(target, "_out", None)
        return None


def build_material() -> ClassMaterial:
    """The ``tools.Terminal`` application.

    ``args[0]`` names a :class:`TerminalDevice` registered in
    ``vm.consoles``; ``args[1]`` (optional, default ``tools.Login``) is the
    class to spawn connected to the terminal.
    """
    material = ClassMaterial(CLASS_NAME, code_source=CODE_SOURCE,
                             doc="The Java terminal application (§6.2).")

    @material.member
    def main(jclass, ctx, args):
        device_name = args[0] if args else "console"
        child_class = args[1] if len(args) > 1 else "tools.Login"
        device = ctx.vm.consoles.get(device_name)
        if device is None:
            ctx.stderr.println(f"terminal: no such device: {device_name}")
            return 1
        terminal = Terminal(device)
        # Point our own standard streams at the terminal; children inherit.
        ctx.system.set_in(terminal.input)
        ctx.system.set_out(terminal.output)
        ctx.system.set_err(terminal.output)
        while not device.closed:
            child = ctx.exec(child_class, [])
            child.wait_for()
        return 0

    return material
