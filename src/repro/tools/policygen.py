"""``policygen`` — drive the policy-inference loop from the shell.

Subcommands::

    policygen record <app-id> on|off|status   toggle learning mode
    policygen infer  <app-id> [--phases] [-o FILE]
    policygen diff   <app-id> [--phases]      inferred vs live policy
    policygen lint   [FILE]                   static checks (live policy
                                              when no file is given)

Like ``kill``, acting on another user's application needs standing: the
caller must run as the same user, be an ancestor, or hold
``modifyApplication``.  On top of that, toggling recording is gated on
the ``controlPolicyRecording`` runtime permission, granted by the default
policy to this tool's code source only — the login pattern: the privilege
belongs to the *program*, not the user running it.
"""

from __future__ import annotations

from repro.core.context import current_application_or_none
from repro.io.file import read_text, write_text
from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import (
    IllegalArgumentException,
    IOException,
    SecurityException,
)
from repro.policytool.diff import diff_policies, render_diff
from repro.policytool.infer import infer_policy
from repro.policytool.lint import lint_policy, render_findings
from repro.policytool.recorder import recorder_for
from repro.security import access
from repro.security.codesource import CodeSource
from repro.security.permissions import RuntimePermission
from repro.security.policy import parse_policy

CLASS_NAME = "tools.Policygen"
CODE_SOURCE = CodeSource(
    "file:/usr/local/java/tools/policygen/Policygen.class")

USAGE = ("usage: policygen record <app-id> on|off|status | "
         "policygen infer <app-id> [--phases] [-o FILE] | "
         "policygen diff <app-id> [--phases] | policygen lint [FILE]")


def _find_application(ctx, raw):
    registry = ctx.vm.application_registry
    if registry is None:
        return None
    try:
        return registry.find(int(raw))
    except ValueError:
        return None


def _check_standing(ctx, application) -> None:
    """The ``kill`` rule: same user, ancestor, or modifyApplication."""
    caller = current_application_or_none()
    if (caller is not None and caller is not application
            and not application._is_ancestor(caller)
            and caller.user != application.user):
        sm = ctx.vm.security_manager
        if sm is not None:
            sm.check_modify_application(application)


def _check_record_privilege(ctx) -> None:
    """Code-source gate: only this tool's domain holds the grant."""
    sm = ctx.vm.security_manager
    if sm is not None:
        access.do_privileged(lambda: sm.check_permission(
            RuntimePermission("controlPolicyRecording")))


def _records_for(ctx, application):
    """The app's recorded slice if one exists, else its live audit slice."""
    recorder = getattr(ctx.vm, "policy_recorder", None)
    slice_ = recorder.slice_for(application.app_id) \
        if recorder is not None else None
    if slice_ is not None:
        return slice_.snapshot()
    return ctx.vm.telemetry.audit.records(app_id=application.app_id)


def build_material() -> ClassMaterial:
    material = ClassMaterial(
        CLASS_NAME, code_source=CODE_SOURCE,
        doc="Infer, diff and lint security policies from the audit trail.")

    @material.member
    def main(jclass, ctx, args):
        verb, *rest = args if args else ("help",)

        if verb == "record":
            if len(rest) < 1:
                ctx.stderr.println(USAGE)
                return 2
            application = _find_application(ctx, rest[0])
            if application is None:
                ctx.stderr.println(
                    f"policygen: no such application: {rest[0]}")
                return 1
            action = rest[1] if len(rest) > 1 else "status"
            recorder = recorder_for(ctx.vm)
            if action == "status":
                state = "on" if recorder.is_recording(application.app_id) \
                    else "off"
                ctx.stdout.println(
                    f"{application.app_id} {application.name}: "
                    f"recording {state}")
                return 0
            if action not in ("on", "off"):
                ctx.stderr.println(USAGE)
                return 2
            try:
                _check_standing(ctx, application)
                _check_record_privilege(ctx)
            except SecurityException as exc:
                ctx.stderr.println(f"policygen: {exc}")
                return 1
            if action == "on":
                recorder.start(application)
            else:
                recorder.stop(application)
            ctx.stdout.println(
                f"{application.app_id} {application.name}: "
                f"recording {action}")
            return 0

        if verb in ("infer", "diff"):
            if not rest:
                ctx.stderr.println(USAGE)
                return 2
            application = _find_application(ctx, rest[0])
            if application is None:
                ctx.stderr.println(
                    f"policygen: no such application: {rest[0]}")
                return 1
            try:
                _check_standing(ctx, application)
            except SecurityException as exc:
                ctx.stderr.println(f"policygen: {exc}")
                return 1
            options = rest[1:]
            phase_aware = "--phases" in options
            records = _records_for(ctx, application)
            if not records:
                ctx.stderr.println(
                    f"policygen: no audit records for application "
                    f"{application.app_id}")
                return 1
            inferred = infer_policy(records, phase_aware=phase_aware)
            if verb == "diff":
                live = ctx.vm.policy
                if live is None:
                    ctx.stderr.println("policygen: no live policy")
                    return 1
                ctx.stdout.print(render_diff(diff_policies(live, inferred)))
                return 0
            text = inferred.render()
            if "-o" in options:
                index = options.index("-o")
                if index + 1 >= len(options):
                    ctx.stderr.println(USAGE)
                    return 2
                target = options[index + 1]
                try:
                    write_text(ctx, target, text)
                except (IOException, SecurityException) as exc:
                    ctx.stderr.println(f"policygen: {target}: {exc}")
                    return 1
                ctx.stdout.println(f"wrote {target}")
                return 0
            ctx.stdout.print(text)
            return 0

        if verb == "lint":
            if rest:
                try:
                    policy = parse_policy(read_text(ctx, rest[0]))
                except (IOException, SecurityException,
                        IllegalArgumentException) as exc:
                    ctx.stderr.println(f"policygen: {rest[0]}: {exc}")
                    return 1
            else:
                policy = ctx.vm.policy
                if policy is None:
                    ctx.stderr.println("policygen: no live policy")
                    return 1
            findings = lint_policy(policy)
            ctx.stdout.print(render_findings(findings))
            return 1 if any(finding.severity == "error"
                            for finding in findings) else 0

        ctx.stdout.println(USAGE)
        return 0 if verb == "help" else 2

    return material
