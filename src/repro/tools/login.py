"""The login program (Section 5.2, Section 6).

    "In our prototype, login-in now works similar to UNIX's login program.
    It has the necessary privileges and resets its own running user-id to be
    the one that it has successfully authenticated.  It then spawns a shell
    (which will have the same running user) and waits for the shell to
    finish.

    Note that it doesn't matter which user is running the login program.
    In fact, it might even be some sort of 'null' user for bootstrapping
    purposes. ...  All we need to do is grant the login program the
    privilege to set its own user.  This can be done through code
    source-based security policies, since it is the *program* that is
    granted the privilege, not the user that runs it."

The default policy grants ``RuntimePermission("setUser")`` to this class's
code source (``file:/usr/local/java/tools/login/*``) and to nothing else;
the reset itself happens inside ``do_privileged`` so only login's own
domain is consulted.
"""

from __future__ import annotations

from repro.io.streams import LineReader
from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import AuthenticationException
from repro.security import access
from repro.security.codesource import CodeSource
from repro.tools.terminal import Terminal

CLASS_NAME = "tools.Login"
CODE_SOURCE = CodeSource("file:/usr/local/java/tools/login/Login.class")

MAX_ATTEMPTS = 3


def build_material() -> ClassMaterial:
    material = ClassMaterial(CLASS_NAME, code_source=CODE_SOURCE,
                             doc="Authenticates a user and spawns a shell.")

    @material.member
    def main(jclass, ctx, args):
        shell_class = args[0] if args else "tools.Shell"
        terminal = Terminal.from_stream(ctx.stdin)
        reader = None if terminal is not None else LineReader(ctx.stdin)
        for _ in range(MAX_ATTEMPTS):
            if terminal is not None:
                username = terminal.read_string("login: ")
                if username is None:
                    return 1  # hang-up
                password = terminal.read_password()
                if password is None:
                    return 1
            else:
                ctx.stdout.print("login: ")
                username = reader.read_line()
                if username is None:
                    return 1
                ctx.stdout.print("Password: ")
                password = reader.read_line()
                if password is None:
                    return 1
            try:
                user = ctx.vm.user_database.authenticate(
                    username.strip(), password)
            except AuthenticationException:
                # Diagnostics go to the application's own System.err so a
                # redirected stdout transcript stays clean.
                ctx.stderr.println("Login incorrect")
                continue
            # The privileged reset: only login's own code source needs the
            # setUser grant (Section 5.2).
            app = ctx.app
            access.do_privileged(lambda: app.set_user(user))
            _print_motd(jclass, ctx)
            shell = ctx.exec(shell_class, [])
            shell.wait_for()
            ctx.stdout.println("logged out")
            return 0
        ctx.stderr.println("Too many failures")
        return 1

    @material.member
    def _print_motd(jclass, ctx) -> None:
        """Best-effort message of the day (non-public member)."""
        from repro.io.file import read_text
        from repro.jvm.errors import IOException, SecurityException
        try:
            ctx.stdout.print(read_text(ctx, "/etc/motd"))
        except (IOException, SecurityException):
            pass

    return material
