"""The Bourne-like shell of Section 6.1.

    "As part of our prototype, we implemented a shell for executing Java
    applications.  The shell executes an infinite loop in which it reads in
    a command line (provided by a terminal, see Section 6.2), interprets it,
    and possibly launches one or more applications. ...  The shell that we
    implemented uses pipes between applications and input/output redirection
    (with the syntax borrowed from UNIX)."

The redirection mechanism is implemented *exactly* as the paper describes:

    "in the case of pipes or input/output redirection, the shell temporarily
    changes its own standard input and output streams (to point to the
    appropriate pipe or file streams) before each application is launched.
    This causes the new application to have its input/output streams set to
    nonstandard values.  Afterwards, the shell's streams are re-set to their
    original values."

and so is the stream-ownership rule: the shell opens pipe and file streams,
so "it is the shell's responsibility to close those streams after the
application finishes."

Supported syntax: ``cmd args``, ``|`` pipes, ``<`` / ``>`` / ``>>``
redirection, ``&`` background jobs, ``;`` sequencing, ``&&`` / ``||``
conditional chaining, single/double quotes and backslash escapes, and
``$?`` / ``$USER`` / ``$HOME`` / ``$CWD`` substitution.  Built-ins: ``cd``, ``pwd``, ``exit``/``quit``, ``jobs``,
``history``, ``setprop``, ``getprop``, ``help``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.io.file import FileInputStream, FileOutputStream, JFile
from repro.io.streams import LineReader, PrintStream, make_pipe
from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import (
    IllegalArgumentException,
    IOException,
    JavaThrowable,
    SecurityException,
)
from repro.jvm.threads import JThread
from repro.security.codesource import CodeSource
from repro.tools.terminal import Terminal
from repro.unixfs.vfs import VirtualFileSystem

CLASS_NAME = "tools.Shell"
CODE_SOURCE = CodeSource("file:/usr/local/java/tools/shell/Shell.class")

NOT_FOUND_STATUS = 127
SYNTAX_ERROR_STATUS = 2


# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------

_OPERATORS = ("&&", "||", "|", "<", ">>", ">", "&", ";")


@dataclass(frozen=True)
class Token:
    kind: str   # "word" or "op"
    value: str


def tokenize(line: str) -> list[Token]:
    """Split a command line into word and operator tokens."""
    tokens: list[Token] = []
    buffer: list[str] = []
    index, length = 0, len(line)
    in_word = False

    def flush() -> None:
        nonlocal in_word
        if in_word:
            tokens.append(Token("word", "".join(buffer)))
            buffer.clear()
            in_word = False

    while index < length:
        char = line[index]
        if char in " \t":
            flush()
            index += 1
            continue
        if char == "#" and not in_word:
            break  # comment to end of line
        matched_op = None
        for op in _OPERATORS:
            if line.startswith(op, index):
                matched_op = op
                break
        if matched_op is not None:
            flush()
            tokens.append(Token("op", matched_op))
            index += len(matched_op)
            continue
        if char == "\\":
            if index + 1 >= length:
                raise IllegalArgumentException("trailing backslash")
            buffer.append(line[index + 1])
            in_word = True
            index += 2
            continue
        if char in "'\"":
            quote = char
            index += 1
            start = index
            while index < length and line[index] != quote:
                if quote == '"' and line[index] == "\\" \
                        and index + 1 < length:
                    buffer.append(line[start:index])
                    buffer.append(line[index + 1])
                    index += 2
                    start = index
                    continue
                index += 1
            if index >= length:
                raise IllegalArgumentException(f"unterminated {quote} quote")
            buffer.append(line[start:index])
            in_word = True
            index += 1
            continue
        buffer.append(char)
        in_word = True
        index += 1
    flush()
    return tokens


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------

@dataclass
class Command:
    argv: list[str] = field(default_factory=list)
    redirect_in: Optional[str] = None
    redirect_out: Optional[str] = None
    append_out: bool = False


@dataclass
class Pipeline:
    commands: list[Command] = field(default_factory=list)
    background: bool = False
    #: None, "and" (run only if the previous pipeline succeeded) or "or"
    #: (run only if it failed) — the shell's && / || chaining.
    condition: Optional[str] = None


def parse(tokens: list[Token]) -> list[Pipeline]:
    """Group tokens into pipelines (split on ``;``/``&&``/``||``/``&``)."""
    pipelines: list[Pipeline] = []
    current = Pipeline()
    command = Command()
    carry_condition: Optional[str] = None

    def end_command() -> None:
        nonlocal command
        if command.argv or command.redirect_in or command.redirect_out:
            current.commands.append(command)
        command = Command()

    def end_pipeline(background: bool = False,
                     next_condition: Optional[str] = None) -> None:
        nonlocal current, carry_condition
        end_command()
        if current.commands:
            current.background = background
            current.condition = carry_condition
            pipelines.append(current)
            carry_condition = next_condition
        elif background:
            raise IllegalArgumentException("syntax error near '&'")
        elif next_condition is not None:
            raise IllegalArgumentException(
                f"syntax error near "
                f"'{'&&' if next_condition == 'and' else '||'}'")
        elif carry_condition is not None:
            raise IllegalArgumentException(
                "syntax error: conditional operator with no right-hand "
                "side")
        current = Pipeline()

    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token.kind == "word":
            command.argv.append(token.value)
        elif token.value == "|":
            end_command()
            if not current.commands:
                raise IllegalArgumentException("syntax error near '|'")
        elif token.value in ("<", ">", ">>"):
            if index + 1 >= len(tokens) or tokens[index + 1].kind != "word":
                raise IllegalArgumentException(
                    f"syntax error: {token.value} needs a file name")
            target = tokens[index + 1].value
            if token.value == "<":
                command.redirect_in = target
            else:
                command.redirect_out = target
                command.append_out = token.value == ">>"
            index += 1
        elif token.value == ";":
            end_pipeline()
        elif token.value == "&":
            end_pipeline(background=True)
        elif token.value == "&&":
            end_pipeline(next_condition="and")
        elif token.value == "||":
            end_pipeline(next_condition="or")
        index += 1
    end_pipeline()
    return pipelines


# --------------------------------------------------------------------------
# Jobs
# --------------------------------------------------------------------------

@dataclass
class Job:
    job_id: int
    pipeline_text: str
    applications: list = field(default_factory=list)
    opened_streams: list = field(default_factory=list)
    done: bool = False


# --------------------------------------------------------------------------
# The shell proper
# --------------------------------------------------------------------------

class Shell:
    """One shell session, bound to an application context."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.app = ctx.app
        self.last_status = 0
        self.jobs: list[Job] = []
        self._job_counter = 0
        self.exit_requested = False
        self.terminal = Terminal.from_stream(ctx.stdin)
        self._builtins = {
            "cd": self._builtin_cd,
            "pwd": self._builtin_pwd,
            "exit": self._builtin_exit,
            "quit": self._builtin_exit,
            "jobs": self._builtin_jobs,
            "history": self._builtin_history,
            "setprop": self._builtin_setprop,
            "getprop": self._builtin_getprop,
            "help": self._builtin_help,
        }

    # -- substitution ----------------------------------------------------------

    def _substitute(self, line: str) -> str:
        user = self.app.user if self.app is not None else None
        replacements = {
            "$?": str(self.last_status),
            "$USER": user.name if user is not None else "",
            "$HOME": user.home if user is not None else "/",
            "$CWD": self.ctx.cwd,
        }
        for key, value in replacements.items():
            line = line.replace(key, value)
        return line

    # -- one line --------------------------------------------------------------

    def run_line(self, line: str) -> int:
        """Interpret one command line; returns the resulting status."""
        self._reap_jobs()
        try:
            pipelines = parse(tokenize(self._substitute(line)))
        except IllegalArgumentException as exc:
            self.ctx.stderr.println(f"sh: {exc.message}")
            self.last_status = SYNTAX_ERROR_STATUS
            return self.last_status
        for pipeline in pipelines:
            if self.exit_requested:
                break
            if pipeline.condition == "and" and self.last_status != 0:
                continue
            if pipeline.condition == "or" and self.last_status == 0:
                continue
            self.last_status = self._run_pipeline(pipeline, line)
        return self.last_status

    # -- pipelines ------------------------------------------------------------------

    def _run_pipeline(self, pipeline: Pipeline, text: str) -> int:
        commands = pipeline.commands
        # Single builtin command, no pipe: run in-process.
        if (len(commands) == 1 and not pipeline.background
                and commands[0].argv
                and commands[0].argv[0] in self._builtins
                and commands[0].redirect_in is None
                and commands[0].redirect_out is None):
            return self._builtins[commands[0].argv[0]](commands[0].argv[1:])

        # Resolve every command up front so a typo aborts cleanly.
        class_names: list[str] = []
        for command in commands:
            if not command.argv:
                self.ctx.stderr.println("sh: empty command in pipeline")
                return SYNTAX_ERROR_STATUS
            name = command.argv[0]
            if name in self._builtins:
                self.ctx.stderr.println(
                    f"sh: {name}: builtin not allowed in pipeline/background")
                return SYNTAX_ERROR_STATUS
            class_name = self.ctx.vm.tool_path.get(name, name
                                                   if "." in name else None)
            if class_name is None or class_name not in self.ctx.vm.registry:
                self.ctx.stderr.println(f"sh: {name}: command not found")
                return NOT_FOUND_STATUS
            class_names.append(class_name)

        original = (self.app.stdin, self.app.stdout, self.app.stderr)
        opened: list = []        # streams the shell opened (must close)
        stage_writers: list = []  # per-stage write ends to close on finish
        applications = []
        try:
            next_stdin = original[0]
            for index, command in enumerate(commands):
                stdin = next_stdin
                if command.redirect_in is not None:
                    stdin = FileInputStream(self.ctx, command.redirect_in)
                    opened.append(stdin)
                reader_to_close = stdin if stdin is not original[0] \
                    else None
                last = index == len(commands) - 1
                writer_to_close = None
                if not last:
                    pipe_reader, pipe_writer = make_pipe(owner=self.app)
                    stdout = PrintStream(pipe_writer)
                    stdout.owner = self.app
                    next_stdin = pipe_reader
                    opened.extend([pipe_reader, pipe_writer])
                    writer_to_close = stdout
                elif command.redirect_out is not None:
                    sink = FileOutputStream(self.ctx, command.redirect_out,
                                            append=command.append_out)
                    stdout = PrintStream(sink)
                    stdout.owner = self.app
                    opened.extend([sink, stdout])
                    writer_to_close = stdout
                else:
                    stdout = original[1]
                # The paper's launch mechanism: temporarily repoint our own
                # streams, exec (the child inherits), then restore.
                self.app.set_streams(stdin=stdin, stdout=stdout)
                try:
                    application = self.ctx.exec(class_names[index],
                                                command.argv[1:])
                finally:
                    self.app.set_streams(stdin=original[0],
                                         stdout=original[1])
                application.stage_writer = writer_to_close
                application.stage_reader = reader_to_close
                applications.append(application)
        except (IOException, SecurityException) as exc:
            self.ctx.stderr.println(f"sh: {exc}")
            for stream in opened:
                if not stream.closed:
                    stream.close()
            for application in applications:
                application.destroy()
            return 1

        if pipeline.background:
            self._job_counter += 1
            job = Job(self._job_counter, text.strip(), applications, opened)
            self.jobs.append(job)
            self._watch_job(job)
            self.ctx.stdout.println(
                f"[{job.job_id}] {applications[0].app_id}")
            return 0
        return self._wait_pipeline(applications, opened)

    def _wait_pipeline(self, applications: list, opened: list) -> int:
        """Wait for every stage, with Unix pipe semantics.

        As each stage exits, the shell closes the streams *it* created for
        that stage (its close responsibility, Section 5.1): the stage's
        output writer — so the next stage sees end-of-stream — and the
        stage's input reader — so the *previous* stage gets a broken pipe,
        the SIGPIPE analogue that lets ``yes | head -n 4`` terminate.
        """
        status = 0
        last = applications[-1]
        pending = list(applications)
        while pending:
            for application in list(pending):
                code = application.wait_for(timeout=0.02)
                if code is None:
                    continue
                pending.remove(application)
                if application is last:
                    status = code
                writer = getattr(application, "stage_writer", None)
                if writer is not None and not writer.closed:
                    writer.close()
                reader = getattr(application, "stage_reader", None)
                if reader is not None and not reader.closed:
                    reader.close()
        for stream in opened:
            if not stream.closed:
                stream.close()
        return status

    def _watch_job(self, job: Job) -> None:
        """Background watcher thread (inside the shell's own group)."""
        def body() -> None:
            self._wait_pipeline(job.applications, job.opened_streams)
            job.done = True
        JThread(target=body, name=f"job-{job.job_id}",
                group=self.app.thread_group, daemon=True).start()

    def _reap_jobs(self) -> None:
        for job in [j for j in self.jobs if j.done]:
            self.ctx.stdout.println(f"[{job.job_id}] done "
                                    f"{job.pipeline_text}")
            self.jobs.remove(job)

    # -- builtins ---------------------------------------------------------------------

    def _builtin_cd(self, argv: list[str]) -> int:
        user = self.app.user
        target = argv[0] if argv else (user.home if user else "/")
        path = VirtualFileSystem.normalize(target, self.ctx.cwd)
        try:
            jfile = JFile(self.ctx, path)
            if not jfile.is_directory():
                self.ctx.stderr.println(f"cd: {target}: not a directory")
                return 1
        except (IOException, SecurityException) as exc:
            self.ctx.stderr.println(f"cd: {target}: {exc}")
            return 1
        self.app.set_cwd(path)
        return 0

    def _builtin_pwd(self, argv: list[str]) -> int:
        self.ctx.stdout.println(self.ctx.cwd)
        return 0

    def _builtin_exit(self, argv: list[str]) -> int:
        self.exit_requested = True
        return int(argv[0]) if argv and argv[0].isdigit() else 0

    def _builtin_jobs(self, argv: list[str]) -> int:
        self._reap_jobs()
        for job in self.jobs:
            self.ctx.stdout.println(
                f"[{job.job_id}] running {job.pipeline_text}")
        return 0

    def _builtin_history(self, argv: list[str]) -> int:
        if self.terminal is None:
            return 0
        for index, line in enumerate(self.terminal.history, start=1):
            self.ctx.stdout.println(f"{index:4d}  {line}")
        return 0

    def _builtin_setprop(self, argv: list[str]) -> int:
        if len(argv) != 2:
            self.ctx.stderr.println("usage: setprop key value")
            return 1
        self.app.properties.set_property(argv[0], argv[1])
        return 0

    def _builtin_getprop(self, argv: list[str]) -> int:
        if len(argv) != 1:
            self.ctx.stderr.println("usage: getprop key")
            return 1
        value = self.app.properties.get_property(argv[0])
        if value is None:
            try:
                value = self.ctx.system.get_property(argv[0])
            except SecurityException:
                value = None
        self.ctx.stdout.println(value if value is not None else "")
        return 0

    def _builtin_help(self, argv: list[str]) -> int:
        self.ctx.stdout.println(
            "builtins: " + " ".join(sorted(self._builtins)))
        self.ctx.stdout.println(
            "commands: " + " ".join(sorted(self.ctx.vm.tool_path)))
        return 0

    # -- the interactive loop --------------------------------------------------------

    def prompt(self) -> str:
        user = self.app.user.name if self.app is not None else "?"
        host = self.ctx.vm.machine.hostname.split(".")[0]
        return f"{user}@{host}:{self.ctx.cwd}$ "

    def interactive(self) -> int:
        reader = None if self.terminal is not None \
            else LineReader(self.ctx.stdin)
        while not self.exit_requested:
            if self.terminal is not None:
                line = self.terminal.read_string(self.prompt())
            else:
                line = reader.read_line()
            if line is None:
                break
            if not line.strip():
                continue
            try:
                self.run_line(line)
            except JavaThrowable as exc:
                self.ctx.stderr.println(f"sh: {exc}")
                self.last_status = 1
        return self.last_status if self.exit_requested else 0


def build_material() -> ClassMaterial:
    material = ClassMaterial(
        CLASS_NAME, code_source=CODE_SOURCE,
        doc="Bourne-like shell: pipes, redirection, background jobs (§6.1).")

    @material.member
    def main(jclass, ctx, args):
        shell = Shell(ctx)
        if args and args[0] == "-c":
            status = 0
            for line in args[1:]:
                status = shell.run_line(line)
                if shell.exit_requested:
                    break
            return status
        return shell.interactive()

    return material
