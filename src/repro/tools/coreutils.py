"""Utility applications (Section 6.1: "implemented utility applications
including ls and cat"), plus the process tools a multi-processing VM wants
(``ps``, ``kill``) and a few more standard pieces used by the examples and
benchmarks.

Every utility is ordinary *local application code*: it lives under
``file:/usr/local/java/tools/...``, so by the paper's Section 5.3 policy it
may exercise the permissions of its running user — which is exactly why
``cat /home/alice/notes.txt`` works for Alice and fails for Bob.

All utilities follow the Unix conventions: read stdin when no file
arguments are given (so they compose in pipes), write to stdout, return a
non-zero status on failure.
"""

from __future__ import annotations

from repro.io.file import (
    FileInputStream,
    FileOutputStream,
    JFile,
    read_text,
)
from repro.io.streams import LineReader
from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import IOException, SecurityException
from repro.jvm.threads import JThread
from repro.security.codesource import CodeSource


def _tool(name: str, doc: str) -> ClassMaterial:
    simple = name.rsplit(".", 1)[-1]
    return ClassMaterial(name, doc=doc, code_source=CodeSource(
        f"file:/usr/local/java/tools/{simple.lower()}/{simple}.class"))


def _fail(ctx, tool: str, exc: Exception) -> int:
    ctx.stderr.println(f"{tool}: {exc}")
    return 1


# --------------------------------------------------------------------------
# ls
# --------------------------------------------------------------------------

ls_material = _tool("tools.Ls", "List directory contents.")


@ls_material.member
def main(jclass, ctx, args):  # noqa: F811 - each material has its own main
    long_format = "-l" in args
    paths = [a for a in args if not a.startswith("-")] or [ctx.cwd]
    status = 0
    for path in paths:
        try:
            jfile = JFile(ctx, path)
            if jfile.is_directory():
                names = jfile.list()
            elif jfile.exists():
                names = [path]
            else:
                ctx.stderr.println(f"ls: {path}: no such file or directory")
                status = 1
                continue
            for name in names:
                if long_format:
                    entry = JFile(ctx, f"{jfile.path}/{name}"
                                  if name != path else path)
                    kind = "d" if entry.is_directory() else "-"
                    ctx.stdout.println(
                        f"{kind} {entry.length():8d} {name}")
                else:
                    ctx.stdout.println(name)
        except (IOException, SecurityException) as exc:
            status = _fail(ctx, "ls", exc)
    return status


# --------------------------------------------------------------------------
# cat
# --------------------------------------------------------------------------

cat_material = _tool("tools.Cat", "Concatenate files to standard output.")


@cat_material.member
def main(jclass, ctx, args):  # noqa: F811
    if not args:
        while True:
            chunk = ctx.stdin.read(8192)
            if not chunk:
                return 0
            ctx.stdout.write(chunk)
    status = 0
    for path in args:
        try:
            stream = FileInputStream(ctx, path)
            try:
                while True:
                    chunk = stream.read(8192)
                    if not chunk:
                        break
                    ctx.stdout.write(chunk)
            finally:
                stream.close()
        except (IOException, SecurityException) as exc:
            status = _fail(ctx, "cat", exc)
    return status


# --------------------------------------------------------------------------
# echo
# --------------------------------------------------------------------------

echo_material = _tool("tools.Echo", "Print arguments to standard output.")


@echo_material.member
def main(jclass, ctx, args):  # noqa: F811
    if args and args[0] == "-n":
        ctx.stdout.print(" ".join(args[1:]))
    else:
        ctx.stdout.println(" ".join(args))
    return 0


# --------------------------------------------------------------------------
# wc
# --------------------------------------------------------------------------

wc_material = _tool("tools.Wc", "Count lines, words, and bytes.")


@wc_material.member
def main(jclass, ctx, args):  # noqa: F811
    lines_only = "-l" in args
    paths = [a for a in args if not a.startswith("-")]

    def count(data: bytes) -> tuple[int, int, int]:
        text = data.decode("utf-8", errors="replace")
        return (text.count("\n"), len(text.split()), len(data))

    if not paths:
        totals = count(ctx.stdin.read_all())
        ctx.stdout.println(str(totals[0]) if lines_only
                           else f"{totals[0]} {totals[1]} {totals[2]}")
        return 0
    status = 0
    for path in paths:
        try:
            stream = FileInputStream(ctx, path)
            try:
                lines, words, size = count(stream.read_all())
            finally:
                stream.close()
            ctx.stdout.println(
                f"{lines} {path}" if lines_only
                else f"{lines} {words} {size} {path}")
        except (IOException, SecurityException) as exc:
            status = _fail(ctx, "wc", exc)
    return status


# --------------------------------------------------------------------------
# head
# --------------------------------------------------------------------------

head_material = _tool("tools.Head", "Print the first lines of input.")


@head_material.member
def main(jclass, ctx, args):  # noqa: F811
    limit = 10
    paths: list[str] = []
    index = 0
    while index < len(args):
        if args[index] == "-n" and index + 1 < len(args):
            limit = int(args[index + 1])
            index += 2
        else:
            paths.append(args[index])
            index += 1
    try:
        if paths:
            text = read_text(ctx, paths[0])
            for line in text.splitlines()[:limit]:
                ctx.stdout.println(line)
        else:
            reader = LineReader(ctx.stdin)
            for _ in range(limit):
                line = reader.read_line()
                if line is None:
                    break
                ctx.stdout.println(line)
    except (IOException, SecurityException) as exc:
        return _fail(ctx, "head", exc)
    return 0


# --------------------------------------------------------------------------
# grep
# --------------------------------------------------------------------------

grep_material = _tool("tools.Grep", "Print lines matching a substring.")


@grep_material.member
def main(jclass, ctx, args):  # noqa: F811
    if not args:
        ctx.stderr.println("usage: grep pattern [file...]")
        return 2
    pattern, paths = args[0], args[1:]
    matched = False

    def scan(text: str, prefix: str = "") -> None:
        nonlocal matched
        for line in text.splitlines():
            if pattern in line:
                matched = True
                ctx.stdout.println(prefix + line)

    try:
        if paths:
            for path in paths:
                scan(read_text(ctx, path),
                     prefix=f"{path}:" if len(paths) > 1 else "")
        else:
            reader = LineReader(ctx.stdin)
            while True:
                line = reader.read_line()
                if line is None:
                    break
                if pattern in line:
                    matched = True
                    ctx.stdout.println(line)
    except (IOException, SecurityException) as exc:
        return _fail(ctx, "grep", exc)
    return 0 if matched else 1


# --------------------------------------------------------------------------
# whoami / pwd
# --------------------------------------------------------------------------

whoami_material = _tool("tools.Whoami", "Print the running user's name.")


@whoami_material.member
def main(jclass, ctx, args):  # noqa: F811
    ctx.stdout.println(ctx.user.name if ctx.user is not None else "nobody")
    return 0


pwd_material = _tool("tools.Pwd", "Print the current working directory.")


@pwd_material.member
def main(jclass, ctx, args):  # noqa: F811
    ctx.stdout.println(ctx.cwd)
    return 0


# --------------------------------------------------------------------------
# ps / kill — the application table (Section 5.1's lifecycle, made visible)
# --------------------------------------------------------------------------

ps_material = _tool("tools.Ps", "List running applications.")


@ps_material.member
def main(jclass, ctx, args):  # noqa: F811
    long_format = "-l" in args
    telemetry_format = "-t" in args
    registry = ctx.vm.application_registry
    if registry is None:
        ctx.stderr.println("ps: not a multi-processing VM")
        return 1
    try:
        applications = registry.applications()
    except SecurityException as exc:
        return _fail(ctx, "ps", exc)
    header = "  AID USER     STATE      THR NAME"
    if long_format:
        header += "  [threads/streams/windows/children ever]"
    if telemetry_format:
        header += "  [events/denies/rejects]"
    ctx.stdout.println(header)
    hub = ctx.vm.telemetry
    for application in applications:
        row = (f"{application.app_id:5d} {application.user.name:<8s} "
               f"{application.state:<10s} "
               f"{len(application.live_threads()):3d} {application.name}")
        if long_format:
            stats = application.stats
            row += (f"  [{stats['threads']}/{stats['streams']}/"
                    f"{stats['windows']}/{stats['children']}]")
        if telemetry_format:
            dispatched = int(hub.metrics.total(
                "awt.events.dispatched", app=application.name))
            denies = len(hub.audit.denials(app_id=application.app_id))
            rejects = int(hub.metrics.total(
                "limits.rejected", app=application.name))
            row += f"  [{dispatched}/{denies}/{rejects}]"
        ctx.stdout.println(row)
    return 0


vmstat_material = _tool("tools.Vmstat", "Print VM-wide telemetry rollups.")


@vmstat_material.member
def main(jclass, ctx, args):  # noqa: F811
    # The same rollup /proc/vmstat serves; going through the file system
    # exercises the mount (and the FilePermission grant) end to end, with
    # a direct-hub fallback for VMs booted without the mount.
    try:
        ctx.stdout.print(read_text(ctx, "/proc/vmstat"))
        return 0
    except (IOException, SecurityException):
        pass
    hub = ctx.vm.telemetry
    ctx.stdout.println(f"apps.live\t{int(hub.metrics.total('apps.live'))}")
    ctx.stdout.println(
        f"apps.launched\t{int(hub.metrics.total('apps.launched'))}")
    ctx.stdout.println(f"security.grants\t{hub.audit.grants}")
    ctx.stdout.println(f"security.denies\t{hub.audit.denies}")
    return 0


kill_material = _tool("tools.Kill", "Terminate an application by id.")


@kill_material.member
def main(jclass, ctx, args):  # noqa: F811
    if not args:
        ctx.stderr.println("usage: kill app-id...")
        return 2
    registry = ctx.vm.application_registry
    status = 0
    for raw in args:
        try:
            application = registry.find(int(raw))
        except ValueError:
            ctx.stderr.println(f"kill: bad id {raw!r}")
            status = 1
            continue
        if application is None:
            ctx.stderr.println(f"kill: no such application: {raw}")
            status = 1
            continue
        try:
            application.destroy()
        except SecurityException as exc:
            status = _fail(ctx, "kill", exc)
    return status


# --------------------------------------------------------------------------
# sleep / yes — load generators for the benchmarks
# --------------------------------------------------------------------------

sleep_material = _tool("tools.Sleep", "Sleep for the given seconds.")


@sleep_material.member
def main(jclass, ctx, args):  # noqa: F811
    JThread.sleep(float(args[0]) if args else 1.0)
    return 0


yes_material = _tool("tools.Yes", "Repeat a line forever (pipe feeder).")


@yes_material.member
def main(jclass, ctx, args):  # noqa: F811
    from repro.jvm.threads import checkpoint
    word = args[0] if args else "y"
    payload = (word + "\n").encode("utf-8")
    while True:
        checkpoint()
        ctx.stdout.write(payload)
        # PrintStream never throws (Java semantics); a broken pipe shows
        # up as the error flag — the Unix SIGPIPE analogue.
        if hasattr(ctx.stdout, "check_error") and ctx.stdout.check_error():
            return 1


# --------------------------------------------------------------------------
# touch / rm / mkdir / cp / mv
# --------------------------------------------------------------------------

touch_material = _tool("tools.Touch", "Create empty files.")


@touch_material.member
def main(jclass, ctx, args):  # noqa: F811
    status = 0
    for path in args:
        try:
            JFile(ctx, path).create_new_file()
        except (IOException, SecurityException) as exc:
            status = _fail(ctx, "touch", exc)
    return status


rm_material = _tool("tools.Rm", "Remove files.")


@rm_material.member
def main(jclass, ctx, args):  # noqa: F811
    status = 0
    for path in args:
        try:
            JFile(ctx, path).delete()
        except (IOException, SecurityException) as exc:
            status = _fail(ctx, "rm", exc)
    return status


mkdir_material = _tool("tools.Mkdir", "Create directories.")


@mkdir_material.member
def main(jclass, ctx, args):  # noqa: F811
    status = 0
    for path in args:
        try:
            JFile(ctx, path).mkdir()
        except (IOException, SecurityException) as exc:
            status = _fail(ctx, "mkdir", exc)
    return status


cp_material = _tool("tools.Cp", "Copy a file.")


@cp_material.member
def main(jclass, ctx, args):  # noqa: F811
    if len(args) != 2:
        ctx.stderr.println("usage: cp source dest")
        return 2
    try:
        source = FileInputStream(ctx, args[0])
        try:
            sink = FileOutputStream(ctx, args[1])
            try:
                while True:
                    chunk = source.read(8192)
                    if not chunk:
                        break
                    sink.write(chunk)
            finally:
                sink.close()
        finally:
            source.close()
    except (IOException, SecurityException) as exc:
        return _fail(ctx, "cp", exc)
    return 0


mv_material = _tool("tools.Mv", "Rename a file.")


@mv_material.member
def main(jclass, ctx, args):  # noqa: F811
    if len(args) != 2:
        ctx.stderr.println("usage: mv source dest")
        return 2
    try:
        JFile(ctx, args[0]).rename_to(JFile(ctx, args[1]))
    except (IOException, SecurityException) as exc:
        return _fail(ctx, "mv", exc)
    return 0


# --------------------------------------------------------------------------
# backup — Section 5.3's rule 2: "The backup application can read all files."
# --------------------------------------------------------------------------

backup_material = ClassMaterial(
    "apps.Backup",
    doc="Copies a source tree into /var/backup (policy rule 2, §5.3).",
    code_source=CodeSource("file:/usr/local/java/apps/backup/Backup"))


@backup_material.member
def main(jclass, ctx, args):  # noqa: F811
    if not args:
        ctx.stderr.println("usage: backup path...")
        return 2
    copied = 0
    status = 0
    for path in args:
        try:
            source = JFile(ctx, path)
            if source.is_directory():
                names = [f"{source.path}/{n}" for n in source.list()]
            else:
                names = [source.path]
            for name in names:
                child = JFile(ctx, name)
                if child.is_directory():
                    continue
                data = read_text(ctx, name)
                flat = name.strip("/").replace("/", "_")
                from repro.io.file import write_text
                write_text(ctx, f"/var/backup/{flat}", data)
                copied += 1
        except (IOException, SecurityException) as exc:
            status = _fail(ctx, "backup", exc)
    ctx.stdout.println(f"backed up {copied} file(s)")
    return status


# --------------------------------------------------------------------------
# sort / uniq / tee — classic pipeline citizens
# --------------------------------------------------------------------------

sort_material = _tool("tools.Sort", "Sort lines of text.")


@sort_material.member
def main(jclass, ctx, args):  # noqa: F811
    reverse = "-r" in args
    paths = [a for a in args if not a.startswith("-")]
    try:
        if paths:
            lines = []
            for path in paths:
                lines.extend(read_text(ctx, path).splitlines())
        else:
            lines = ctx.stdin.read_all().decode(
                "utf-8", errors="replace").splitlines()
    except (IOException, SecurityException) as exc:
        return _fail(ctx, "sort", exc)
    for line in sorted(lines, reverse=reverse):
        ctx.stdout.println(line)
    return 0


uniq_material = _tool("tools.Uniq", "Drop adjacent duplicate lines.")


@uniq_material.member
def main(jclass, ctx, args):  # noqa: F811
    count_mode = "-c" in args
    reader = LineReader(ctx.stdin)
    previous = None
    count = 0

    def emit():
        if previous is None:
            return
        if count_mode:
            ctx.stdout.println(f"{count:4d} {previous}")
        else:
            ctx.stdout.println(previous)

    while True:
        line = reader.read_line()
        if line is None:
            break
        if line == previous:
            count += 1
            continue
        emit()
        previous = line
        count = 1
    emit()
    return 0


tee_material = _tool("tools.Tee", "Copy stdin to stdout and files.")


@tee_material.member
def main(jclass, ctx, args):  # noqa: F811
    append = "-a" in args
    paths = [a for a in args if not a.startswith("-")]
    try:
        sinks = [FileOutputStream(ctx, path, append=append)
                 for path in paths]
    except (IOException, SecurityException) as exc:
        return _fail(ctx, "tee", exc)
    try:
        while True:
            chunk = ctx.stdin.read(8192)
            if not chunk:
                break
            ctx.stdout.write(chunk)
            for sink in sinks:
                sink.write(chunk)
    finally:
        for sink in sinks:
            sink.close()
    return 0


# --------------------------------------------------------------------------
# env / hostname / id / date / true / false
# --------------------------------------------------------------------------

env_material = _tool("tools.Env", "Print application properties and "
                                  "selected system properties.")


@env_material.member
def main(jclass, ctx, args):  # noqa: F811
    app = ctx.app
    if app is not None:
        for key in app.properties.property_names():
            ctx.stdout.println(
                f"{key}={app.properties.get_property(key)}")
    for key in ("java.version", "os.name", "user.name"):
        try:
            ctx.stdout.println(
                f"{key}={ctx.system.get_property(key)}")
        except SecurityException:
            pass
    return 0


hostname_material = _tool("tools.Hostname", "Print the machine name.")


@hostname_material.member
def main(jclass, ctx, args):  # noqa: F811
    ctx.stdout.println(ctx.vm.machine.hostname)
    return 0


id_material = _tool("tools.Id", "Print the running user identity.")


@id_material.member
def main(jclass, ctx, args):  # noqa: F811
    user = ctx.user
    if user is None:
        ctx.stdout.println("uid=nobody")
        return 0
    ctx.stdout.println(f"user={user.name} home={user.home} "
                       f"app={ctx.app.name}")
    return 0


date_material = _tool("tools.Date", "Print the current time (millis).")


@date_material.member
def main(jclass, ctx, args):  # noqa: F811
    ctx.stdout.println(str(ctx.system.current_time_millis()))
    return 0


true_material = _tool("tools.True", "Exit successfully.")


@true_material.member
def main(jclass, ctx, args):  # noqa: F811
    return 0


false_material = _tool("tools.False", "Exit with status 1.")


@false_material.member
def main(jclass, ctx, args):  # noqa: F811
    return 1


# --------------------------------------------------------------------------
# svc — the supervision operator surface
# --------------------------------------------------------------------------

svc_material = _tool("tools.Svc", "Inspect and drive supervised services.")


def _find_service(vm, name):
    """(supervisor, service) owning ``name``, or (None, None)."""
    for supervisor in vm.supervisors.values():
        for service in supervisor.services():
            if service.spec.name == name:
                return supervisor, service
    return None, None


@svc_material.member
def main(jclass, ctx, args):  # noqa: F811
    supervisors = ctx.vm.supervisors
    verb, *rest = args if args else ("status",)

    if verb == "status":
        if not supervisors:
            ctx.stdout.println("svc: no supervisor running")
            return 0
        for name in sorted(supervisors):
            ctx.stdout.print(supervisors[name].render_services())
        return 0

    if verb in ("start", "stop"):
        if not rest:
            ctx.stderr.println(f"svc: {verb} needs a service name")
            return 2
        status = 0
        for service_name in rest:
            supervisor, service = _find_service(ctx.vm, service_name)
            if service is None:
                ctx.stderr.println(
                    f"svc: no such service: {service_name}")
                status = 1
                continue
            if verb == "stop":
                supervisor.stop_service(service_name)
            else:
                supervisor.start_service(service_name)
            ctx.stdout.println(f"{service_name}: {verb} requested")
        return status

    ctx.stderr.println(
        "usage: svc [status] | svc start <service>... | "
        "svc stop <service>...")
    return 2


ALL_MATERIALS = [
    svc_material,
    sort_material, uniq_material, tee_material, env_material,
    hostname_material, id_material, date_material, true_material,
    false_material,
    ls_material, cat_material, echo_material, wc_material, head_material,
    grep_material, whoami_material, pwd_material, ps_material, kill_material,
    vmstat_material,
    sleep_material, yes_material, touch_material, rm_material,
    mkdir_material, cp_material, mv_material, backup_material,
]

COMMANDS = {
    "ls": "tools.Ls", "cat": "tools.Cat", "echo": "tools.Echo",
    "wc": "tools.Wc", "head": "tools.Head", "grep": "tools.Grep",
    "whoami": "tools.Whoami", "pwd": "tools.Pwd", "ps": "tools.Ps",
    "kill": "tools.Kill", "sleep": "tools.Sleep", "yes": "tools.Yes",
    "touch": "tools.Touch", "rm": "tools.Rm", "mkdir": "tools.Mkdir",
    "cp": "tools.Cp", "mv": "tools.Mv", "backup": "apps.Backup",
    "sort": "tools.Sort", "uniq": "tools.Uniq", "tee": "tools.Tee",
    "env": "tools.Env", "hostname": "tools.Hostname", "id": "tools.Id",
    "date": "tools.Date", "true": "tools.True", "false": "tools.False",
    "vmstat": "tools.Vmstat", "svc": "tools.Svc",
}
