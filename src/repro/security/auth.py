"""Java-level users and authentication (Section 5.2).

These are the users *of the multi-processing JVM* — distinct from the OS
account the JVM process runs under (:mod:`repro.unixfs.users`).  The paper:

    "In our prototype, login-in now works similar to UNIX's login program.
    It has the necessary privileges and resets its own running user-id to be
    the one that it has successfully authenticated. ...  it is not necessary
    to have the login program be executed by an all-powerful 'superuser'.
    All we need to do is grant the login program the privilege to set its
    own user."

Passwords are salted and hashed (PBKDF2); the database never stores or
returns plaintext.  A special *null user* exists "for bootstrapping
purposes" — it is the running user of the initial application before any
login has happened.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import threading
from dataclasses import dataclass, field

from repro.jvm.errors import (
    AuthenticationException,
    IllegalArgumentException,
)

_PBKDF2_ITERATIONS = 1200  # modest; this is a simulation, not production KDF
_SALT_BYTES = 16


@dataclass(frozen=True)
class JavaUser:
    """A principal known to the multi-processing JVM."""

    name: str
    home: str = ""
    full_name: str = ""

    def __str__(self) -> str:
        return self.name


#: Section 5.2: "it might even be some sort of 'null' user for bootstrapping
#: purposes" — the user the boot application runs as before login.
NULL_USER = JavaUser(name="nobody", home="/", full_name="null user")

#: The VM's own identity for system applications (the reaper, toolkit, ...).
SYSTEM_USER = JavaUser(name="system", home="/", full_name="JVM system")


@dataclass
class _Account:
    user: JavaUser
    salt: bytes
    digest: bytes
    disabled: bool = False
    failed_attempts: int = field(default=0)


def _derive(password: str, salt: bytes) -> bytes:
    return hashlib.pbkdf2_hmac("sha256", password.encode("utf-8"), salt,
                               _PBKDF2_ITERATIONS)


class UserDatabase:
    """Account store and authenticator for the multi-processing JVM."""

    def __init__(self, max_failed_attempts: int = 0):
        self._accounts: dict[str, _Account] = {}
        self._lock = threading.RLock()
        #: 0 disables lockout; otherwise accounts lock after N failures.
        self.max_failed_attempts = max_failed_attempts

    def add_user(self, name: str, password: str, home: str = "",
                 full_name: str = "") -> JavaUser:
        if not name:
            raise IllegalArgumentException("user name may not be empty")
        with self._lock:
            if name in self._accounts:
                raise IllegalArgumentException(f"duplicate user {name!r}")
            salt = os.urandom(_SALT_BYTES)
            user = JavaUser(name=name, home=home or f"/home/{name}",
                            full_name=full_name)
            self._accounts[name] = _Account(user, salt,
                                            _derive(password, salt))
            return user

    def remove_user(self, name: str) -> None:
        with self._lock:
            self._accounts.pop(name, None)

    def set_password(self, name: str, password: str) -> None:
        with self._lock:
            account = self._require(name)
            salt = os.urandom(_SALT_BYTES)
            account.salt = salt
            account.digest = _derive(password, salt)

    def disable(self, name: str) -> None:
        with self._lock:
            self._require(name).disabled = True

    def _require(self, name: str) -> _Account:
        account = self._accounts.get(name)
        if account is None:
            raise AuthenticationException(f"no such user: {name}")
        return account

    def lookup(self, name: str) -> JavaUser:
        with self._lock:
            return self._require(name).user

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._accounts

    def user_names(self) -> list[str]:
        with self._lock:
            return sorted(self._accounts)

    def authenticate(self, name: str, password: str) -> JavaUser:
        """Verify credentials; raises AuthenticationException on failure.

        Failure messages do not reveal whether the account exists.
        """
        with self._lock:
            account = self._accounts.get(name)
            if account is None:
                raise AuthenticationException("login incorrect")
            if account.disabled:
                raise AuthenticationException("login incorrect")
            candidate = _derive(password, account.salt)
            if not hmac.compare_digest(candidate, account.digest):
                account.failed_attempts += 1
                if (self.max_failed_attempts
                        and account.failed_attempts
                        >= self.max_failed_attempts):
                    account.disabled = True
                raise AuthenticationException("login incorrect")
            account.failed_attempts = 0
            return account.user


def standard_user_database() -> UserDatabase:
    """Accounts used throughout the examples, tests, and benchmarks."""
    database = UserDatabase()
    database.add_user("alice", "wonderland", home="/home/alice",
                      full_name="Alice")
    database.add_user("bob", "builder", home="/home/bob", full_name="Bob")
    return database
