"""The security manager: the ``check*`` suite of Section 3.3.

"The Java class libraries are written in such a way that all sensitive
operations call into a centralized object, the *security manager*, to check
whether the callee should be allowed to invoke this operation."

This base class implements every check by mapping it onto a typed
permission and delegating to the stack-inspecting
:mod:`~repro.security.access` controller — the JDK 1.2 behaviour the paper
builds on.  The multi-processing *system* security manager of Section 5.6
(:mod:`repro.security.sysmanager`) subclasses this and overrides the
thread, thread-group, and reflection checks with the paper's inter-
application policy.
"""

from __future__ import annotations

from repro.jvm.errors import SecurityException
from repro.security import access
from repro.security.permissions import (
    AWTPermission,
    FilePermission,
    Permission,
    PropertyPermission,
    RuntimePermission,
    SocketPermission,
)
from repro.telemetry import audit_check


class SecurityManager:
    """Code-source-based security manager (single-application JDK 1.2)."""

    #: Owning VM (set by ``VirtualMachine.set_security_manager``); lets
    #: decisions made from host threads reach the right audit log.
    vm = None

    #: Canonical label this manager writes into audit records.  Fixed per
    #: class (not derived from ``type(self).__name__``) so subclassed or
    #: wrapped managers cannot drift the trail's vocabulary — policy
    #: inference keys on these two labels.
    AUDIT_NAME = "SecurityManager"

    # -- the funnel --------------------------------------------------------------

    def check_permission(self, permission: Permission) -> None:
        """All checks funnel into the AccessController's stack walk.

        Every decision — grant or deny — lands in the audit log with the
        deciding manager's class name attached (Section 5.6 has *multiple*
        managers, so attribution matters).
        """
        domain = access.current_domain()
        domain_name = domain.name if domain is not None else None
        try:
            access.check_permission(permission)
        except SecurityException:
            audit_check(permission, granted=False,
                        manager=self.AUDIT_NAME,
                        domain=domain_name, vm=self.vm)
            raise
        audit_check(permission, granted=True,
                    manager=self.AUDIT_NAME,
                    domain=domain_name, vm=self.vm)

    # -- files --------------------------------------------------------------------

    def check_read(self, path: str) -> None:
        self.check_permission(FilePermission(path, "read"))

    def check_write(self, path: str) -> None:
        self.check_permission(FilePermission(path, "write"))

    def check_delete(self, path: str) -> None:
        self.check_permission(FilePermission(path, "delete"))

    def check_exec(self, path: str) -> None:
        self.check_permission(FilePermission(path, "execute"))

    # -- network --------------------------------------------------------------------

    def check_connect(self, host: str, port: int) -> None:
        self.check_permission(SocketPermission(f"{host}:{port}", "connect"))

    def check_listen(self, port: int) -> None:
        self.check_permission(SocketPermission(f"localhost:{port}", "listen"))

    def check_accept(self, host: str, port: int) -> None:
        self.check_permission(SocketPermission(f"{host}:{port}", "accept"))

    def check_resolve(self, host: str) -> None:
        self.check_permission(SocketPermission(host, "resolve"))

    # -- properties --------------------------------------------------------------------

    def check_property_access(self, key: str, write: bool = False) -> None:
        actions = "read,write" if write else "read"
        self.check_permission(PropertyPermission(key, actions))

    def check_properties_access(self) -> None:
        self.check_permission(PropertyPermission("*", "read,write"))

    # -- VM-level operations -----------------------------------------------------------

    def check_exit(self, status: int) -> None:
        self.check_permission(RuntimePermission("exitVM"))

    def check_create_class_loader(self) -> None:
        self.check_permission(RuntimePermission("createClassLoader"))

    def check_set_io(self) -> None:
        self.check_permission(RuntimePermission("setIO"))

    def check_set_user(self) -> None:
        """Section 5.2: "Special privileges are needed to set the user"."""
        self.check_permission(RuntimePermission("setUser"))

    # -- threads ---------------------------------------------------------------------------

    def check_access_thread(self, thread) -> None:
        self.check_permission(RuntimePermission("modifyThread"))

    def check_access_group(self, group) -> None:
        self.check_permission(RuntimePermission("modifyThreadGroup"))

    # -- applications (multi-processing additions) ----------------------------------------

    def check_modify_application(self, application) -> None:
        self.check_permission(RuntimePermission("modifyApplication"))

    def check_read_application_table(self) -> None:
        self.check_permission(RuntimePermission("readApplicationTable"))

    # -- reflection ----------------------------------------------------------------------

    def check_member_access(self, jclass, member: str) -> None:
        self.check_permission(RuntimePermission("accessDeclaredMembers"))

    # -- windowing ---------------------------------------------------------------------------

    def check_top_level_window(self, window) -> None:
        self.check_permission(AWTPermission("showWindow"))

    def check_awt_event_queue_access(self) -> None:
        self.check_permission(AWTPermission("accessEventQueue"))
