"""Security policy: grants to code sources *and* to users.

Section 3.3 describes the JDK 1.2 direction: "depending on who signed the
code and where the code came from, the user can specify which operations
should be allowed".  Section 5.3 extends the policy language so that

    "(1) the security policy can grant permissions to a particular user and
    (2) the policy can also grant certain code sources the privilege to
    exercise the permissions of the running user."

The policy file grammar (a faithful superset of the JDK 1.2 one)::

    grant [codeBase "URL"] [, signedBy "alice,bob"] [, user "alice"] {
        permission PermissionType ["target" [, "actions"]];
        ...
    };

``codeBase`` URLs support the ``/*`` (directory) and ``/-`` (subtree)
wildcards; a ``grant user "alice"`` block with no ``codeBase`` grants
permissions to the *user* alice, consulted by the access controller when a
domain holding :class:`~repro.security.permissions.UserPermission` runs on
behalf of alice (Section 5.3).

A grant may additionally carry a ``phase`` condition (the execution-state
MAC, in the spirit of TOMOYO's per-phase profiles)::

    grant codeBase "file:/usr/local/java/apps/editor/*", phase "init" {
        permission FilePermission "/etc/editor.conf", "read";
    };

Phase-conditioned grants only apply while the calling application is in
that lifecycle phase (:data:`PHASES`: ``init`` → ``steady`` →
``shutdown``).  Host threads have no phase, so phase grants fail closed
for them.  Phase enforcement folds into the cached ``check_permission``
walk — per-phase decision memos coexist inside each protection domain, so
a phase transition never bumps the global epoch.

The paper's own example policy (Section 5.3) is provided verbatim by
:func:`paper_example_policy` and exercised by the S1 experiment tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.jvm.errors import IllegalArgumentException
from repro.security import cache
from repro.security.codesource import CodeSource, ProtectionDomain
from repro.security.permissions import (
    AllPermission,
    Permission,
    Permissions,
    make_permission,
)


#: Application lifecycle phases, in their only legal order.  The kernel
#: advances apps forward through these (construction → first AWT dispatch
#: → exit); apps may advance themselves to drop privileges early.
PHASE_INIT = "init"
PHASE_STEADY = "steady"
PHASE_SHUTDOWN = "shutdown"
PHASES = (PHASE_INIT, PHASE_STEADY, PHASE_SHUTDOWN)


@dataclass
class GrantEntry:
    """One ``grant`` block of a policy."""

    code_source: Optional[CodeSource] = None
    user: Optional[str] = None
    permissions: list[Permission] = field(default_factory=list)
    #: Optional execution-phase condition; None means "in any phase".
    phase: Optional[str] = None

    def matches_code_source(self, code_source: Optional[CodeSource],
                            phase: Optional[str] = None) -> bool:
        if self.phase is not None and self.phase != phase:
            return False  # fail closed: host threads have phase None
        if self.user is not None and self.code_source is None:
            return False  # pure user grant; never matches code
        if self.code_source is None:
            return True  # grant to all code
        return self.code_source.implies(code_source)

    def matches_user(self, user_name: str,
                     phase: Optional[str] = None) -> bool:
        if self.phase is not None and self.phase != phase:
            return False
        return self.user == user_name and self.code_source is None


class Policy:
    """The installed security policy of the VM.

    Resolution is memoized (the security fast path): the permissions for
    a code source or a user are computed once per *epoch* and then served
    from a dict.  The epoch is a monotonic counter bumped by every grant
    mutation (:meth:`add_grant`, :meth:`refresh_from`), and protection
    domains revalidate their own decision memos against it — so a policy
    change is observed by the immediately following permission check,
    never a TTL later.
    """

    def __init__(self, entries: Optional[list[GrantEntry]] = None):
        self._entries: list[GrantEntry] = list(entries or [])
        self._lock = threading.RLock()
        self._epoch = 0
        #: keyed ``(code_source, phase)`` / ``(user, phase)``; phase is
        #: normalized to None while no grant carries a phase condition, so
        #: phase-free policies keep exactly one entry per source.
        self._code_source_cache: dict[tuple, Permissions] = {}
        self._user_cache: dict[tuple, Permissions] = {}
        #: One interned policy-backed domain per code source, so identical
        #: code sources share one decision memo (hit rates compound).
        self._interned_domains: dict[Optional[CodeSource],
                                     ProtectionDomain] = {}
        self.cache_counters = cache.CacheCounters()
        self.phase_sensitive = any(
            entry.phase is not None for entry in self._entries)
        if self.phase_sensitive:
            cache.PHASE_AWARE = True

    @property
    def epoch(self) -> int:
        """Monotonic grant-set version; bumped by every mutation."""
        return self._epoch

    def bind_telemetry(self, metrics) -> None:
        """Re-home the ``security.cache.*`` counters into a VM's registry.

        Called by the launcher once the policy is installed on a VM, so
        ``/proc/vmstat`` and ``/proc/security/cache`` see the live values.
        The counter bundle mutates in place: domains that already captured
        it keep counting into the new registry.
        """
        self.cache_counters.rebind(metrics)

    # -- programmatic construction ------------------------------------------------

    def _invalidate_locked(self) -> None:
        """Bump the epoch and drop every memo (caller holds the lock)."""
        self._epoch += 1
        self._code_source_cache.clear()
        self._user_cache.clear()
        self.phase_sensitive = any(
            entry.phase is not None for entry in self._entries)
        if self.phase_sensitive:
            # Sticky, process-wide: once any policy conditions on phase,
            # walks start resolving the caller's phase (once per walk).
            cache.PHASE_AWARE = True
        self.cache_counters.invalidation.inc()

    def add_grant(self, permissions: list[Permission],
                  code_base: Optional[str] = None,
                  signed_by: Optional[str] = None,
                  user: Optional[str] = None,
                  phase: Optional[str] = None) -> GrantEntry:
        code_source = None
        if code_base is not None or signed_by is not None:
            signers = [s.strip() for s in (signed_by or "").split(",")
                       if s.strip()]
            code_source = CodeSource(code_base, signers)
        entry = GrantEntry(code_source=code_source, user=user,
                           permissions=list(permissions), phase=phase)
        with self._lock:
            self._entries.append(entry)
            self._invalidate_locked()
        return entry

    def entries(self) -> list[GrantEntry]:
        with self._lock:
            return list(self._entries)

    # -- evaluation -----------------------------------------------------------------

    def _scan_code_source(
            self, code_source: Optional[CodeSource],
            phase: Optional[str] = None) -> Permissions:
        granted = Permissions()
        for entry in self._entries:
            if entry.matches_code_source(code_source, phase):
                for permission in entry.permissions:
                    granted.add(permission)
        return granted

    def _scan_user(self, user_name: str,
                   phase: Optional[str] = None) -> Permissions:
        granted = Permissions()
        for entry in self._entries:
            if entry.matches_user(user_name, phase):
                for permission in entry.permissions:
                    granted.add(permission)
        return granted

    def permissions_for_code_source(
            self, code_source: Optional[CodeSource],
            phase: Optional[str] = None) -> Permissions:
        if phase is not None and not self.phase_sensitive:
            phase = None  # phase-free policy: one cache entry per source
        with self._lock:
            if not cache.ENABLED:
                return self._scan_code_source(code_source, phase)
            key = (code_source, phase)
            granted = self._code_source_cache.get(key)
            if granted is None:
                self.cache_counters.policy_miss.inc()
                granted = self._scan_code_source(code_source, phase)
                granted.set_read_only()
                self._code_source_cache[key] = granted
            else:
                self.cache_counters.policy_hit.inc()
            return granted

    def permissions_for_user(self, user_name: str,
                             phase: Optional[str] = None) -> Permissions:
        """Section 5.3's user grants, consulted via UserPermission.

        Memoized per ``(user, phase, epoch)``: cache entries never survive
        a grant mutation (the epoch bump clears them under the same lock),
        so ``setUser`` plus a policy refresh are both seen immediately by
        ``_domain_satisfies`` — which now stops allocating a fresh
        ``Permissions`` on every check of the user path.
        """
        if phase is not None and not self.phase_sensitive:
            phase = None
        with self._lock:
            if not cache.ENABLED:
                return self._scan_user(user_name, phase)
            key = (user_name, phase)
            granted = self._user_cache.get(key)
            if granted is None:
                self.cache_counters.policy_miss.inc()
                granted = self._scan_user(user_name, phase)
                granted.set_read_only()
                self._user_cache[key] = granted
            else:
                self.cache_counters.policy_hit.inc()
            return granted

    def implies(self, domain: ProtectionDomain, permission: Permission,
                phase: Optional[str] = None) -> bool:
        """Dynamic policy lookup used by :class:`ProtectionDomain`."""
        return self.permissions_for_code_source(
            domain.code_source, phase).implies(permission)

    def domain_for_code_source(
            self, code_source: Optional[CodeSource],
            name: str = "") -> ProtectionDomain:
        """The interned policy-backed domain for ``code_source``.

        Class loaders route plain (no static permissions) domain creation
        through here, so every class defined from the same code source —
        across loaders and applications — shares one domain and therefore
        one decision memo.  The intern table survives epoch bumps: the
        domains revalidate themselves against :attr:`epoch`.
        """
        with self._lock:
            domain = self._interned_domains.get(code_source)
            if domain is None:
                domain = ProtectionDomain(
                    code_source, policy=self,
                    name=name or (code_source.url if code_source else ""))
                self._interned_domains[code_source] = domain
                self.cache_counters.interned.set(
                    len(self._interned_domains))
        return domain

    def interned_domain_count(self) -> int:
        with self._lock:
            return len(self._interned_domains)

    def refresh_from(self, text: str) -> None:
        """Replace all entries with the parse of ``text``."""
        entries = parse_policy(text).entries()
        with self._lock:
            self._entries = entries
            self._invalidate_locked()

    def render(self) -> str:
        """Serialize back to policy-file text (``parse_policy``-compatible).

        Round trip: ``parse_policy(policy.render())`` yields a policy with
        the same grants.
        """
        blocks: list[str] = []
        with self._lock:
            entries = list(self._entries)
        for entry in entries:
            selectors: list[str] = []
            if entry.code_source is not None:
                if entry.code_source.url is not None:
                    selectors.append(
                        f'codeBase "{entry.code_source.url}"')
                if entry.code_source.signers:
                    signers = ",".join(sorted(entry.code_source.signers))
                    selectors.append(f'signedBy "{signers}"')
            if entry.user is not None:
                selectors.append(f'user "{entry.user}"')
            if entry.phase is not None:
                selectors.append(f'phase "{entry.phase}"')
            header = "grant" + (" " + ", ".join(selectors)
                                if selectors else "")
            lines = [header + " {"]
            for permission in entry.permissions:
                clause = f"    permission {type(permission).__name__}"
                if not isinstance(permission, AllPermission):
                    clause += f' "{permission.name}"'
                    actions = permission.actions()
                    if actions:
                        clause += f', "{actions}"'
                lines.append(clause + ";")
            lines.append("};")
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks) + ("\n" if blocks else "")


# --------------------------------------------------------------------------
# Policy-file parser
# --------------------------------------------------------------------------

_PUNCTUATION = {"{", "}", ";", ","}


def _tokenize(text: str) -> Iterator[tuple[str, str]]:
    """Yield (kind, value) tokens; kind is 'word', 'string' or 'punct'."""
    index, length = 0, len(text)
    while index < length:
        char = text[index]
        if char in " \t\r\n":
            index += 1
            continue
        if text.startswith("//", index):
            end = text.find("\n", index)
            index = length if end < 0 else end
            continue
        if text.startswith("/*", index):
            end = text.find("*/", index)
            if end < 0:
                raise IllegalArgumentException("unterminated comment")
            index = end + 2
            continue
        if char == '"':
            end = text.find('"', index + 1)
            if end < 0:
                raise IllegalArgumentException("unterminated string")
            yield ("string", text[index + 1:end])
            index = end + 1
            continue
        if char in _PUNCTUATION:
            yield ("punct", char)
            index += 1
            continue
        start = index
        while index < length and text[index] not in " \t\r\n{};,\"":
            index += 1
        yield ("word", text[start:index])


class _TokenStream:
    def __init__(self, tokens: Iterator[tuple[str, str]]):
        self._tokens = list(tokens)
        self._pos = 0

    def peek(self) -> Optional[tuple[str, str]]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise IllegalArgumentException("unexpected end of policy file")
        self._pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        got_kind, got_value = self.next()
        if got_kind != kind or (value is not None and got_value != value):
            raise IllegalArgumentException(
                f"expected {value or kind}, got {got_value!r}")
        return got_value

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        if token is None:
            return False
        got_kind, got_value = token
        if got_kind == kind and (value is None or got_value == value):
            self._pos += 1
            return True
        return False


def parse_policy(text: str) -> Policy:
    """Parse policy-file text into a :class:`Policy`."""
    stream = _TokenStream(_tokenize(text))
    policy = Policy()
    while stream.peek() is not None:
        kind, value = stream.next()
        if kind == "word" and value == "keystore":
            stream.expect("string")
            stream.accept("punct", ";")
            continue
        if kind == "word" and value == "grant":
            _parse_grant(stream, policy)
            continue
        raise IllegalArgumentException(
            f"unexpected token {value!r} at top level")
    return policy


def _parse_grant(stream: _TokenStream, policy: Policy) -> None:
    code_base: Optional[str] = None
    signed_by: Optional[str] = None
    user: Optional[str] = None
    phase: Optional[str] = None
    while True:
        token = stream.peek()
        if token is None:
            raise IllegalArgumentException("unterminated grant clause")
        kind, value = token
        if kind == "punct" and value == "{":
            stream.next()
            break
        if kind == "punct" and value == ",":
            stream.next()
            continue
        keyword = stream.expect("word").lower()
        if keyword == "codebase":
            code_base = stream.expect("string")
        elif keyword == "signedby":
            signed_by = stream.expect("string")
        elif keyword == "user":
            user = stream.expect("string")
        elif keyword == "phase":
            phase = stream.expect("string")
        else:
            raise IllegalArgumentException(
                f"unknown grant selector {keyword!r}")
    permissions: list[Permission] = []
    while not stream.accept("punct", "}"):
        stream.expect("word", "permission")
        type_name = stream.expect("word")
        target: Optional[str] = None
        actions: Optional[str] = None
        if stream.peek() is not None and stream.peek()[0] == "string":
            target = stream.next()[1]
            if stream.accept("punct", ","):
                actions = stream.expect("string")
        stream.expect("punct", ";")
        permissions.append(make_permission(type_name, target, actions))
    stream.accept("punct", ";")
    policy.add_grant(permissions, code_base=code_base,
                     signed_by=signed_by, user=user, phase=phase)


# --------------------------------------------------------------------------
# The paper's Section 5.3 example policy
# --------------------------------------------------------------------------

PAPER_EXAMPLE_POLICY = """
// Section 5.3: "As a result, we can specify policies like the following."

// 1. All local applications can exercise their respective running users'
//    permissions.
grant codeBase "file:/usr/local/java/-" {
    permission UserPermission;
};

// 2. The backup application can read all files.
grant codeBase "file:/usr/local/java/apps/backup/*" {
    permission FilePermission "<<ALL FILES>>", "read";
};

// 3. User Alice can access all files in /home/alice.
grant user "alice" {
    permission FilePermission "/home/alice", "read,write,delete";
    permission FilePermission "/home/alice/-", "read,write,delete";
};

// 4. User Bob can access all files in /home/bob.
grant user "bob" {
    permission FilePermission "/home/bob", "read,write,delete";
    permission FilePermission "/home/bob/-", "read,write,delete";
};
"""


def paper_example_policy() -> Policy:
    """The exact four-rule example policy from Section 5.3."""
    return parse_policy(PAPER_EXAMPLE_POLICY)
