"""Shared knobs and telemetry plumbing for the security fast path.

The paper deferred performance tuning (Section 7); this module is the
spine of the epoch-invalidated permission-decision cache that makes the
Section 3.3/5.6 access-control walk cheap:

* :class:`~repro.security.policy.Policy` memoizes the permissions it
  resolves per code source and per user, keyed against a monotonic
  *epoch* that ``add_grant``/``refresh_from`` bump;
* :class:`~repro.security.codesource.ProtectionDomain` keeps a bounded
  ``permission -> bool`` decision memo, revalidated against the policy
  epoch and the static collection's version — never a TTL, so a policy
  change is visible on the very next check;
* the :mod:`repro.security.access` walk skips domains it already
  validated earlier in the same walk.

Everything here is deliberately tiny: a global enable switch (used by the
benchmarks to measure the uncached baseline), the memo bound, and the
counter bundle that wires ``security.cache.{hit,miss,invalidation}`` into
the telemetry hub.
"""

from __future__ import annotations

import contextlib

from repro.telemetry import GLOBAL_HUB

#: Global switch for every caching layer.  Flipped off only by the
#: benchmarks (to time the uncached baseline) and by tests; epoch state
#: keeps advancing while disabled, so re-enabling is always coherent.
ENABLED = True

#: Upper bound on entries in one protection domain's decision memo.  A
#: domain that sees more distinct permissions than this starts over with
#: a fresh memo (simple wholesale replacement — eviction bookkeeping would
#: cost more than the rare reset).
DOMAIN_MEMO_LIMIT = 256

#: Sticky flag: set True the first time any :class:`Policy` sees a grant
#: with a ``phase`` condition (the execution-state MAC).  Checked once per
#: access-control walk, so deployments that never use phase grants pay a
#: single global load per check and nothing else.
PHASE_AWARE = False

#: Injection point: returns the current application's lifecycle phase
#: ("init" / "steady" / "shutdown") or None for host threads.  Installed by
#: ``repro.core.launcher.install_global_hooks``; kept here so the access
#: controller never imports the application layer.
phase_resolver = None


def current_phase():
    """The calling thread's application phase, or None outside any app."""
    resolver = phase_resolver
    if resolver is None:
        return None
    return resolver()


class CacheCounters:
    """The ``security.cache.*`` metric bundle, bound to one registry.

    Created against the process-global hub and re-bound to a VM's own
    registry by ``Policy.bind_telemetry`` at boot.  Rebinding mutates the
    slots in place so protection domains that already captured this
    bundle keep counting into the right registry.
    """

    __slots__ = ("policy_hit", "policy_miss", "domain_hit", "domain_miss",
                 "invalidation", "interned")

    def __init__(self, metrics=None):
        self.rebind(metrics if metrics is not None else GLOBAL_HUB.metrics)

    def rebind(self, metrics) -> None:
        self.policy_hit = metrics.counter("security.cache.hit",
                                          layer="policy")
        self.policy_miss = metrics.counter("security.cache.miss",
                                           layer="policy")
        self.domain_hit = metrics.counter("security.cache.hit",
                                          layer="domain")
        self.domain_miss = metrics.counter("security.cache.miss",
                                           layer="domain")
        self.invalidation = metrics.counter("security.cache.invalidation")
        self.interned = metrics.gauge("security.cache.interned_domains")


#: Fallback bundle for protection domains that have no (epoch-capable)
#: policy behind them; counts into the process-global hub.
GLOBAL_COUNTERS = CacheCounters()


@contextlib.contextmanager
def disabled():
    """Run a block with every security cache bypassed (baseline timing)."""
    global ENABLED
    previous = ENABLED
    ENABLED = False
    try:
        yield
    finally:
        ENABLED = previous
