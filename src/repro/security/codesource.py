"""Code sources and protection domains (JDK 1.2 model).

Section 3.3: "Current Java implementations usually express their security
policy in terms of code identity that is characterized by both digital
signatures on the mobile code and the network origin of the mobile code."
A :class:`CodeSource` bundles exactly those two: an origin URL and the set of
signer names.  A :class:`ProtectionDomain` binds a code source to the
permissions the policy grants it; every loaded class belongs to one domain.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.security.permissions import (
    Permission,
    PermissionCollection,
    Permissions,
)


class CodeSource:
    """Origin of a piece of code: a URL plus the names that signed it.

    URL wildcard matching for policy ``codeBase`` clauses follows the JDK:

    * ``http://host/dir/*`` matches code directly inside ``dir``;
    * ``http://host/dir/-`` matches code anywhere below ``dir``;
    * an exact URL matches only itself;
    * a ``CodeSource`` with URL ``None`` matches any URL.
    """

    def __init__(self, url: Optional[str], signers: Iterable[str] = ()):
        self.url = url
        self.signers = frozenset(signers)

    def implies(self, other: Optional["CodeSource"]) -> bool:
        """True if this (policy-side) code source matches ``other``.

        Signer semantics: every signer this code source requires must be
        among the signers of ``other``.
        """
        if other is None:
            return False
        if not self.signers <= other.signers:
            return False
        if self.url is None:
            return True
        if other.url is None:
            return False
        return self._url_implies(self.url, other.url)

    @staticmethod
    def _url_implies(pattern: str, url: str) -> bool:
        if pattern == url:
            return True
        if pattern.endswith("/-"):
            return url.startswith(pattern[:-1]) and len(url) > len(pattern) - 1
        if pattern.endswith("/*"):
            prefix = pattern[:-1]
            if not url.startswith(prefix):
                return False
            remainder = url[len(prefix):]
            return bool(remainder) and "/" not in remainder
        return False

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, CodeSource)
                and self.url == other.url
                and self.signers == other.signers)

    def __hash__(self) -> int:
        return hash((self.url, self.signers))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        signed = f", signedBy={sorted(self.signers)}" if self.signers else ""
        return f"CodeSource({self.url!r}{signed})"


class ProtectionDomain:
    """A code source plus the permissions granted to code from it.

    Domains are created when a class is defined by a class loader
    (:mod:`repro.jvm.classloading`).  Permissions come from two places,
    matching JDK 1.2:

    * *static* permissions bound at class-definition time (the
      Appletviewer's ``AppletClassLoader`` uses these to delegate sandbox
      permissions to the applets it loads, Section 6.3);
    * the installed :class:`~repro.security.policy.Policy`, consulted
      dynamically so that policy refreshes take effect.
    """

    def __init__(self, code_source: Optional[CodeSource],
                 permissions: Optional[PermissionCollection] = None,
                 policy: Optional[object] = None,
                 name: str = ""):
        self.code_source = code_source
        self.static_permissions = permissions if permissions is not None \
            else Permissions()
        self.policy = policy
        self.name = name or (code_source.url if code_source else "<system>")

    def implies(self, permission: Permission) -> bool:
        if self.static_permissions.implies(permission):
            return True
        if self.policy is not None:
            return self.policy.implies(self, permission)
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProtectionDomain({self.name!r})"


#: The fully trusted domain used for system classes on the boot class path.
def system_domain() -> ProtectionDomain:
    from repro.security.permissions import AllPermission
    permissions = Permissions([AllPermission()])
    return ProtectionDomain(CodeSource("file:/system/"), permissions,
                            name="<system>")
