"""Code sources and protection domains (JDK 1.2 model).

Section 3.3: "Current Java implementations usually express their security
policy in terms of code identity that is characterized by both digital
signatures on the mobile code and the network origin of the mobile code."
A :class:`CodeSource` bundles exactly those two: an origin URL and the set of
signer names.  A :class:`ProtectionDomain` binds a code source to the
permissions the policy grants it; every loaded class belongs to one domain.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.security import cache
from repro.security.permissions import (
    Permission,
    PermissionCollection,
    Permissions,
)


class CodeSource:
    """Origin of a piece of code: a URL plus the names that signed it.

    URL wildcard matching for policy ``codeBase`` clauses follows the JDK:

    * ``http://host/dir/*`` matches code directly inside ``dir``;
    * ``http://host/dir/-`` matches code anywhere below ``dir``;
    * an exact URL matches only itself;
    * a ``CodeSource`` with URL ``None`` matches any URL.
    """

    def __init__(self, url: Optional[str], signers: Iterable[str] = ()):
        self.url = url
        self.signers = frozenset(signers)

    def implies(self, other: Optional["CodeSource"]) -> bool:
        """True if this (policy-side) code source matches ``other``.

        Signer semantics: every signer this code source requires must be
        among the signers of ``other``.
        """
        if other is None:
            return False
        if not self.signers <= other.signers:
            return False
        if self.url is None:
            return True
        if other.url is None:
            return False
        return self._url_implies(self.url, other.url)

    @staticmethod
    def _url_implies(pattern: str, url: str) -> bool:
        if pattern == url:
            return True
        if pattern.endswith("/-"):
            return url.startswith(pattern[:-1]) and len(url) > len(pattern) - 1
        if pattern.endswith("/*"):
            prefix = pattern[:-1]
            if not url.startswith(prefix):
                return False
            remainder = url[len(prefix):]
            return bool(remainder) and "/" not in remainder
        return False

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, CodeSource)
                and self.url == other.url
                and self.signers == other.signers)

    def __hash__(self) -> int:
        return hash((self.url, self.signers))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        signed = f", signedBy={sorted(self.signers)}" if self.signers else ""
        return f"CodeSource({self.url!r}{signed})"


class ProtectionDomain:
    """A code source plus the permissions granted to code from it.

    Domains are created when a class is defined by a class loader
    (:mod:`repro.jvm.classloading`).  Permissions come from two places,
    matching JDK 1.2:

    * *static* permissions bound at class-definition time (the
      Appletviewer's ``AppletClassLoader`` uses these to delegate sandbox
      permissions to the applets it loads, Section 6.3);
    * the installed :class:`~repro.security.policy.Policy`, consulted
      dynamically so that policy refreshes take effect.
    """

    def __init__(self, code_source: Optional[CodeSource],
                 permissions: Optional[PermissionCollection] = None,
                 policy: Optional[object] = None,
                 name: str = ""):
        self.code_source = code_source
        self.static_permissions = permissions if permissions is not None \
            else Permissions()
        self.policy = policy
        self.name = name or (code_source.url if code_source else "<system>")
        # Bounded decision memo (permission -> bool), revalidated against
        # the policy epoch and the static collection's version — epoch
        # validation, not TTLs, so grant changes are seen on the very next
        # check.  A policy object without an epoch (a test stub) cannot be
        # validated, so such domains skip memoization entirely.
        self._memo: dict[Permission, bool] = {}
        #: Per-phase decision memos (phase -> permission -> bool), used
        #: only when the policy is phase-sensitive.  Memos for different
        #: phases coexist, so an application's phase transition needs no
        #: invalidation at all — and never touches the global epoch.
        self._memo_by_phase: dict[str, dict[Permission, bool]] = {}
        self._memo_epoch = -1
        self._memo_static = -1
        self._memoizable = policy is None or hasattr(policy, "epoch")
        self._counters = getattr(policy, "cache_counters",
                                 cache.GLOBAL_COUNTERS)

    def implies(self, permission: Permission,
                phase: Optional[str] = None) -> bool:
        policy = self.policy
        # The phase only matters when the policy actually conditions on it;
        # otherwise decisions stay phase-free and share the plain memo.
        phased = (phase is not None and policy is not None
                  and getattr(policy, "phase_sensitive", False))
        if not cache.ENABLED or not self._memoizable:
            if self.static_permissions.implies(permission):
                return True
            if policy is not None:
                if phased:
                    return policy.implies(self, permission, phase)
                return policy.implies(self, permission)
            return False
        epoch = policy.epoch if policy is not None else 0
        static_version = self.static_permissions.version
        if epoch != self._memo_epoch or static_version != self._memo_static:
            # Wholesale replacement keeps concurrent readers safe: the new
            # dicts are installed before the stamps, so a reader that sees
            # matching stamps (below) is guaranteed dicts at least as new
            # as those stamps.
            self._memo = {}
            self._memo_by_phase = {}
            self._memo_epoch = epoch
            self._memo_static = static_version
        if phased:
            memo = self._memo_by_phase.get(phase)
            if memo is None:
                memo = self._memo_by_phase[phase] = {}
        else:
            memo = self._memo
        cached = memo.get(permission)
        if cached is not None:
            self._counters.domain_hit.inc()
            return cached
        if phased:
            result = self.static_permissions.implies(permission) or \
                policy.implies(self, permission, phase)
        else:
            result = self.static_permissions.implies(permission) or \
                (policy is not None and policy.implies(self, permission))
        if len(memo) < cache.DOMAIN_MEMO_LIMIT:
            memo[permission] = result
        self._counters.domain_miss.inc()
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProtectionDomain({self.name!r})"


#: The fully trusted domain used for system classes on the boot class path.
def system_domain() -> ProtectionDomain:
    from repro.security.permissions import AllPermission
    permissions = Permissions([AllPermission()])
    return ProtectionDomain(CodeSource("file:/system/"), permissions,
                            name="<system>")
