"""The system security manager of Section 5.6.

"We installed a security manager (the *system security manager*) in our
multi-processing JVM that implements the following policy, primarily for the
purpose of protecting applications from each other.

* A thread T may access another thread U if T's thread group is an ancestor
  of U's thread group.  If this is not the case, T may only access U if it
  has the appropriate permission.
* A thread T may access a thread group G if T's thread group is an ancestor
  of G.  If this is not the case, T may only access G if it has the
  appropriate permission.
* Public members of a class can be accessed normally through the reflection
  API.  Access to non-public members needs an appropriate permission and is
  controlled by the system security manager.
* For all other security-relevant decisions, the AccessController is
  consulted, which effectively means that code needs to have the appropriate
  permission."

This class is installed VM-wide by the multi-processing launcher.  Because
each application sees its own reloaded ``System`` class (Section 5.5),
applications can still call ``set_security_manager`` on *their* copy without
affecting this one — system code only ever consults the VM-wide instance.
"""

from __future__ import annotations

from repro.jvm.threads import JThread
from repro.security.manager import SecurityManager
from repro.telemetry import audit_check


class SystemSecurityManager(SecurityManager):
    """Inter-application protection policy (Section 5.6)."""

    AUDIT_NAME = "SystemSecurityManager"

    def _current_group(self):
        current = JThread.current_or_none()
        return current.group if current is not None else None

    def _audit_ancestry_grant(self, check: str, what: str) -> None:
        """Grants decided *here* (not by the AccessController) still land
        in the audit trail — Section 5.6's point is that several managers
        decide, so the trail says which one did."""
        audit_check(what, granted=True, manager=self.AUDIT_NAME,
                    check=check, domain="<ancestry>", vm=self.vm)

    def check_access_thread(self, thread) -> None:
        """Ancestry rule for threads; fall back to modifyThread permission."""
        group = self._current_group()
        if group is None:
            # Host (unattached) threads drive the VM from outside any
            # application; they play the role of the native launcher and are
            # trusted, like JNI-attached embedder threads.
            return
        if group.parent_of(thread.group):
            self._audit_ancestry_grant("checkAccessThread",
                                       f"thread:{thread.name}")
            return
        super().check_access_thread(thread)

    def check_access_group(self, group) -> None:
        """Ancestry rule for thread groups (also guards thread creation)."""
        current_group = self._current_group()
        if current_group is None:
            return
        if current_group.parent_of(group):
            self._audit_ancestry_grant("checkAccessGroup",
                                       f"threadGroup:{group.name}")
            return
        super().check_access_group(group)

    def check_member_access(self, jclass, member: str) -> None:
        """Public members are free; non-public need the permission.

        :mod:`repro.lang.reflect` only calls this for non-public members,
        but guard again here so direct calls behave identically.
        """
        if member != "<declared>" and jclass.is_public_member(member):
            return
        super().check_member_access(jclass, member)
