"""JDK 1.2-style permissions, including the paper's new *user permission*.

Section 3.3 and reference [4] describe the policy-based, fine-grained access
control model of JDK 1.2: sensitive operations are guarded by typed
``Permission`` objects, and a policy grants collections of permissions to
code sources.  Section 5.3 extends the model with a new kind of permission:

    "(1) the security policy can grant permissions to a particular user and
    (2) the policy can also grant certain *code sources* the privilege to
    exercise the permissions of the running user."

That privilege is :class:`UserPermission` here.  The enforcement logic that
combines code-source permissions with the running user's permissions lives in
:mod:`repro.security.access`.

``implies`` relations follow the JDK 1.2 semantics:

* :class:`FilePermission` — exact path, ``dir/*`` (immediate children),
  ``dir/-`` (recursive subtree), ``<<ALL FILES>>``; actions are a subset
  relation over ``read``, ``write``, ``delete``, ``execute``.
* :class:`SocketPermission` — host (exact, ``*.suffix`` or ``*``) plus a port
  range; ``connect``/``accept``/``listen`` each imply ``resolve``.
* :class:`BasicPermission` subclasses — exact name or trailing-``*``
  hierarchical wildcard (``a.b.*``).
"""

from __future__ import annotations

import posixpath
from typing import Iterable, Iterator, Optional

from repro.jvm.errors import IllegalArgumentException


class Permission:
    """Abstract access right with a target name.

    Subclasses define :meth:`implies`, which is the single question the
    access controller ever asks of a permission.
    """

    def __init__(self, name: str):
        if name is None:
            raise IllegalArgumentException("permission name may not be None")
        self.name = name

    def implies(self, other: "Permission") -> bool:
        raise NotImplementedError

    def actions(self) -> str:
        """Canonical actions string (empty for action-less permissions)."""
        return ""

    def new_permission_collection(self) -> "PermissionCollection":
        return PermissionCollection()

    def __eq__(self, other: object) -> bool:
        return (type(self) is type(other)
                and self.name == other.name
                and self.actions() == other.actions())

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name, self.actions()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        actions = self.actions()
        if actions:
            return f'{type(self).__name__}("{self.name}", "{actions}")'
        return f'{type(self).__name__}("{self.name}")'


class AllPermission(Permission):
    """Implies every other permission (granted to fully trusted code)."""

    def __init__(self, name: str = "<all permissions>", actions: str = ""):
        super().__init__(name)

    def implies(self, other: Permission) -> bool:
        return True


class BasicPermission(Permission):
    """Named permission with hierarchical trailing-``*`` wildcard matching.

    ``RuntimePermission("modifyThread")`` is implied by
    ``RuntimePermission("*")`` and by ``RuntimePermission("modifyThread")``;
    ``BasicPermission("a.b.*")`` implies ``a.b.c`` but not ``a.bc``.
    """

    def __init__(self, name: str, actions: str = ""):
        super().__init__(name)
        if not name:
            raise IllegalArgumentException("permission name may not be empty")
        self._wildcard = False
        self._prefix = name
        if name == "*":
            self._wildcard = True
            self._prefix = ""
        elif name.endswith(".*"):
            self._wildcard = True
            self._prefix = name[:-1]  # keep the trailing dot

    def implies(self, other: Permission) -> bool:
        if type(other) is not type(self):
            return False
        if self._wildcard:
            return other.name.startswith(self._prefix)
        return self.name == other.name


class RuntimePermission(BasicPermission):
    """Guards VM-level operations.

    Targets used by this reproduction include ``modifyThread``,
    ``modifyThreadGroup``, ``setSecurityManager``, ``exitVM``, ``setIO``,
    ``createClassLoader``, ``accessDeclaredMembers``, ``setUser`` (the
    paper's login privilege, Section 5.2), ``modifyApplication``, and
    ``readApplicationTable``.
    """


class AWTPermission(BasicPermission):
    """Guards windowing operations (``showWindow``, ``accessEventQueue``)."""


class UserPermission(BasicPermission):
    """The paper's new permission kind (Section 5.3).

    Code whose protection domain holds a ``UserPermission`` may *exercise
    the permissions of the running user*: during an access-control check,
    a domain that fails on its code-source grants alone additionally checks
    the permissions the policy grants to the current application's user.

    The paper grants this to "all local applications", so that a locally
    installed text editor run by Alice can touch Alice's files while an
    applet (whose code source is remote and has no UserPermission) cannot.
    """

    def __init__(self, name: str = "exerciseUserPermissions",
                 actions: str = ""):
        super().__init__(name)


class PropertyPermission(BasicPermission):
    """Guards system-property access with ``read`` / ``write`` actions."""

    _VALID = ("read", "write")

    def __init__(self, name: str, actions: str = "read"):
        super().__init__(name)
        self._actions = _parse_actions(actions, self._VALID,
                                       "PropertyPermission")

    def actions(self) -> str:
        return ",".join(a for a in self._VALID if a in self._actions)

    def implies(self, other: Permission) -> bool:
        if not isinstance(other, PropertyPermission):
            return False
        if not other._actions <= self._actions:
            return False
        return BasicPermission.implies(
            BasicPermission(self.name), BasicPermission(other.name))


class FilePermission(Permission):
    """Guards file-system access, JDK 1.2 path semantics.

    Path forms (all paths are normalized POSIX paths):

    * ``"/a/b"``    — exactly that file or directory;
    * ``"/a/*"``    — all immediate children of ``/a`` (not ``/a`` itself);
    * ``"/a/-"``    — everything in the subtree below ``/a``;
    * ``"<<ALL FILES>>"`` — every path.

    Actions: subset of ``read``, ``write``, ``delete``, ``execute``.
    """

    ALL_FILES = "<<ALL FILES>>"
    _VALID = ("read", "write", "delete", "execute")

    def __init__(self, name: str, actions: str):
        super().__init__(name)
        self._actions = _parse_actions(actions, self._VALID, "FilePermission")
        if not self._actions:
            raise IllegalArgumentException(
                "FilePermission requires at least one action")
        self._all_files = name == self.ALL_FILES
        self._recursive = False
        self._children = False
        path = name
        if not self._all_files:
            if path.endswith("/-") or path == "-":
                self._recursive = True
                path = path[:-2] if path.endswith("/-") else ""
            elif path.endswith("/*") or path == "*":
                self._children = True
                path = path[:-2] if path.endswith("/*") else ""
            path = posixpath.normpath(path) if path else "/"
        self._path = path

    def actions(self) -> str:
        return ",".join(a for a in self._VALID if a in self._actions)

    def implies(self, other: Permission) -> bool:
        if not isinstance(other, FilePermission):
            return False
        if not other._actions <= self._actions:
            return False
        return self._implies_path(other)

    def _implies_path(self, other: "FilePermission") -> bool:
        if self._all_files:
            return True
        if other._all_files:
            return False
        if self._recursive:
            # "/a/-" implies any exact path, "/b/*" or "/b/-" with b under a.
            return _is_under(other._path, self._path, allow_equal=True) \
                if (other._recursive or other._children) \
                else _is_under(other._path, self._path, allow_equal=False)
        if self._children:
            if other._recursive:
                return False
            if other._children:
                return other._path == self._path
            return posixpath.dirname(other._path) == self._path \
                and other._path != self._path
        if other._recursive or other._children:
            return False
        return self._path == other._path


def _is_under(path: str, root: str, allow_equal: bool) -> bool:
    """True if ``path`` lies strictly (or non-strictly) below ``root``."""
    if path == root:
        return allow_equal
    if root == "/":
        return True
    return path.startswith(root + "/")


class SocketPermission(Permission):
    """Guards network access, JDK 1.2 host/port semantics.

    Name forms: ``host``, ``host:port``, ``host:port1-port2``, ``host:port-``
    and ``host:-port``; host may be exact, ``*.suffix`` or ``*``.
    Actions: subset of ``connect``, ``accept``, ``listen``, ``resolve``;
    any of the first three implies ``resolve``.
    """

    _VALID = ("connect", "listen", "accept", "resolve")
    MIN_PORT = 0
    MAX_PORT = 65535

    def __init__(self, name: str, actions: str):
        super().__init__(name)
        parsed = _parse_actions(actions, self._VALID, "SocketPermission")
        if parsed & {"connect", "accept", "listen"}:
            parsed.add("resolve")
        if not parsed:
            raise IllegalArgumentException(
                "SocketPermission requires at least one action")
        self._actions = parsed
        host, _, portspec = name.partition(":")
        if not host:
            raise IllegalArgumentException(f"bad socket host in {name!r}")
        self._host = host.lower()
        self._ports = _parse_port_range(portspec)

    def actions(self) -> str:
        return ",".join(a for a in self._VALID if a in self._actions)

    def _host_implies(self, other_host: str) -> bool:
        if self._host == "*":
            return True
        if self._host.startswith("*."):
            return other_host.endswith(self._host[1:])
        return self._host == other_host

    def implies(self, other: Permission) -> bool:
        if not isinstance(other, SocketPermission):
            return False
        if not other._actions <= self._actions:
            return False
        if not self._host_implies(other._host):
            return False
        low, high = self._ports
        olow, ohigh = other._ports
        return low <= olow and ohigh <= high


def _parse_port_range(spec: str) -> tuple[int, int]:
    if not spec:
        return (SocketPermission.MIN_PORT, SocketPermission.MAX_PORT)
    if spec == "-":
        return (SocketPermission.MIN_PORT, SocketPermission.MAX_PORT)
    if "-" not in spec:
        port = int(spec)
        return (port, port)
    low_s, _, high_s = spec.partition("-")
    low = int(low_s) if low_s else SocketPermission.MIN_PORT
    high = int(high_s) if high_s else SocketPermission.MAX_PORT
    if low > high:
        raise IllegalArgumentException(f"invalid port range {spec!r}")
    return (low, high)


def _parse_actions(actions: str, valid: Iterable[str],
                   owner: str) -> set[str]:
    parsed: set[str] = set()
    for raw in (actions or "").split(","):
        action = raw.strip().lower()
        if not action:
            continue
        if action not in valid:
            raise IllegalArgumentException(
                f"invalid {owner} action {action!r}")
        parsed.add(action)
    return parsed


# --------------------------------------------------------------------------
# Collections
# --------------------------------------------------------------------------

class PermissionCollection:
    """A mutable bag of permissions supporting a combined ``implies``."""

    def __init__(self, permissions: Iterable[Permission] = ()):
        self._permissions: list[Permission] = []
        self._read_only = False
        #: Mutation counter; protection-domain decision memos validate
        #: against it so a post-definition ``add`` is seen immediately.
        self._version = 0
        for permission in permissions:
            self.add(permission)

    @property
    def version(self) -> int:
        return self._version

    def add(self, permission: Permission) -> None:
        if self._read_only:
            raise IllegalArgumentException(
                "attempt to add to a read-only PermissionCollection")
        if permission not in self._permissions:
            self._permissions.append(permission)
            self._version += 1

    def implies(self, permission: Permission) -> bool:
        return any(held.implies(permission) for held in self._permissions)

    def set_read_only(self) -> None:
        self._read_only = True

    @property
    def read_only(self) -> bool:
        return self._read_only

    def __iter__(self) -> Iterator[Permission]:
        return iter(list(self._permissions))

    def __len__(self) -> int:
        return len(self._permissions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PermissionCollection({self._permissions!r})"


class Permissions(PermissionCollection):
    """Heterogeneous collection, grouped by permission type for fast lookup.

    Mirrors ``java.security.Permissions``: adding an :class:`AllPermission`
    makes the collection imply everything.
    """

    def __init__(self, permissions: Iterable[Permission] = ()):
        self._by_type: dict[type, list[Permission]] = {}
        self._all_permission = False
        #: Query type -> buckets worth scanning for it.  The exact-type
        #: bucket is one dict hit; subclass-related buckets are found by an
        #: issubclass sweep once per query type and memoized (bucket lists
        #: are aliased, so in-place appends stay visible; adding a *new*
        #: bucket type clears the memo).
        self._relevant: dict[type, list[list[Permission]]] = {}
        super().__init__(permissions)

    def add(self, permission: Permission) -> None:
        if self._read_only:
            raise IllegalArgumentException(
                "attempt to add to a read-only Permissions object")
        if isinstance(permission, AllPermission):
            self._all_permission = True
        bucket = self._by_type.get(type(permission))
        if bucket is None:
            bucket = self._by_type[type(permission)] = []
            self._relevant.clear()
        if permission not in bucket:
            bucket.append(permission)
            self._version += 1

    def implies(self, permission: Permission) -> bool:
        if self._all_permission:
            return True
        permission_type = type(permission)
        buckets = self._relevant.get(permission_type)
        if buckets is None:
            buckets = [bucket for bucket_type, bucket
                       in self._by_type.items()
                       if bucket_type is permission_type
                       or issubclass(bucket_type, permission_type)
                       or issubclass(permission_type, bucket_type)]
            self._relevant[permission_type] = buckets
        for bucket in buckets:
            for held in bucket:
                if held.implies(permission):
                    return True
        return False

    def __iter__(self) -> Iterator[Permission]:
        for bucket in self._by_type.values():
            yield from bucket

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_type.values())

    def copy(self) -> "Permissions":
        return Permissions(iter(self))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Permissions({list(self)!r})"


# --------------------------------------------------------------------------
# Factory used by the policy parser
# --------------------------------------------------------------------------

#: Names accepted in policy files, with their JDK-style aliases.
PERMISSION_TYPES: dict[str, type] = {}


def _register(cls: type, *aliases: str) -> None:
    PERMISSION_TYPES[cls.__name__] = cls
    for alias in aliases:
        PERMISSION_TYPES[alias] = cls


_register(AllPermission, "java.security.AllPermission")
_register(RuntimePermission, "java.lang.RuntimePermission")
_register(AWTPermission, "java.awt.AWTPermission")
_register(UserPermission, "javax.mp.UserPermission")
_register(PropertyPermission, "java.util.PropertyPermission")
_register(FilePermission, "java.io.FilePermission")
_register(SocketPermission, "java.net.SocketPermission")
_register(BasicPermission, "java.security.BasicPermission")


def make_permission(type_name: str, target: Optional[str] = None,
                    actions: Optional[str] = None) -> Permission:
    """Instantiate a permission from policy-file text."""
    cls = PERMISSION_TYPES.get(type_name)
    if cls is None:
        raise IllegalArgumentException(
            f"unknown permission type {type_name!r}")
    if cls is AllPermission:
        return AllPermission()
    if cls is UserPermission and target is None:
        return UserPermission()
    if target is None:
        raise IllegalArgumentException(
            f"permission type {type_name!r} requires a target")
    if actions is None:
        return cls(target)
    return cls(target, actions)
