"""The AccessController: stack inspection with ``do_privileged``.

This reproduces the JDK 1.2 access-control algorithm the paper builds on
(Section 3.3, Section 5.6) plus the paper's user-based extension
(Section 5.3):

* Every invocation of a *registered class* method pushes that class's
  :class:`~repro.security.codesource.ProtectionDomain` onto a per-thread
  context stack (the Python analogue of protection domains attached to JVM
  stack frames).
* ``check_permission`` walks the stack from the most recent frame downward;
  **every** domain it encounters must imply the checked permission, until a
  ``do_privileged`` frame is reached (which is checked and then terminates
  the walk).  If the walk exhausts the stack, the thread's *inherited*
  context (captured when the thread was created) is checked as well.
* **User-based combination** (the paper's Section 5.3): a domain that fails
  on its own grants gets a second chance *iff* it holds a
  :class:`~repro.security.permissions.UserPermission` — then the permissions
  granted to the *running user* of the current application are consulted.
  "The permissions granted to the code itself and the permissions granted to
  the user that runs the code are combined."

The luring-attack property of Section 5.6 falls out of this algorithm: when
privileged system code calls into unprivileged application code (for
example, an application-supplied security manager), the application domain
joins the stack and the intersection loses the system privileges.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.jvm.errors import AccessControlException
from repro.security import cache
from repro.security.codesource import ProtectionDomain
from repro.security.permissions import Permission, Permissions, UserPermission

_USER_PERMISSION = UserPermission()

#: Hook installed by the multi-processing launcher: returns the Permissions
#: granted to the running user of the *current* application (or None when no
#: user model is active).  Kept as a module-level injection point so that
#: the security layer does not import the application layer.
user_permission_resolver: Optional[Callable[[], Optional[Permissions]]] = None

#: Optional telemetry hook: called as ``observer(permission, granted)``
#: after every :func:`check_permission` walk.  None (the default) keeps the
#: hot path at a single global load — the observed variant lives in its own
#: function so the common case pays nothing else.
check_observer: Optional[Callable[[Permission, bool], None]] = None

_fallback_stacks = threading.local()


class _Frame:
    """One entry of a thread's access-control stack."""

    __slots__ = ("domain", "privileged", "context")

    def __init__(self, domain: Optional[ProtectionDomain],
                 privileged: bool = False,
                 context: Optional["AccessControlContext"] = None):
        self.domain = domain
        self.privileged = privileged
        self.context = context


def _stack() -> list:
    """The access-control stack of the calling thread.

    Attached :class:`~repro.jvm.threads.JThread` instances carry their stack
    on the thread object (so the inherited-context snapshot can be taken by
    the creator); plain Python threads (tests, the REPL) get a thread-local
    fallback, which behaves like fully trusted host code until frames are
    pushed.
    """
    from repro.jvm.threads import JThread
    thread = JThread.current_or_none()
    if thread is not None:
        return thread._acc_stack
    stack = getattr(_fallback_stacks, "stack", None)
    if stack is None:
        stack = []
        _fallback_stacks.stack = stack
    return stack


def _inherited_context() -> Optional["AccessControlContext"]:
    from repro.jvm.threads import JThread
    thread = JThread.current_or_none()
    if thread is not None:
        return thread.inherited_context
    return getattr(_fallback_stacks, "task_floor", None)


def set_task_floor(context) -> None:
    """Install the inherited-context floor for a facade-less task step.

    The event-loop scheduler calls this around each step of a task that
    has no ``JThread`` identity: the task's creation-time snapshot
    becomes the calling (loop) thread's inherited context for exactly
    the duration of the step, preserving Section 5.6's rule that spawned
    work never exceeds its creator's privilege.  Pass None to clear.
    """
    _fallback_stacks.task_floor = context


class AccessControlContext:
    """An immutable snapshot of protection domains.

    Captured by :func:`get_context` (e.g. at thread creation) and optionally
    passed to :func:`do_privileged` to bound the privileges asserted.
    """

    __slots__ = ("domains",)

    def __init__(self, domains: tuple[ProtectionDomain, ...]):
        self.domains = tuple(domains)

    def check_permission(self, permission: Permission,
                         _seen: Optional[set] = None,
                         _phase: Optional[str] = None) -> None:
        """Check every captured domain; ``_seen`` (internal) carries the
        identities the enclosing stack walk already validated, so shared
        (interned) domains are checked once per walk, not once per
        appearance.  ``_phase`` (internal) is the caller's lifecycle phase,
        resolved once by the enclosing walk; direct callers resolve it
        here."""
        if _phase is None and cache.PHASE_AWARE:
            _phase = cache.current_phase()
        if _seen is None:
            for domain in self.domains:
                _check_domain(domain, permission, _phase)
            return
        for domain in self.domains:
            key = id(domain)
            if key not in _seen:
                _seen.add(key)
                _check_domain(domain, permission, _phase)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AccessControlContext({[d.name for d in self.domains]})"


def _user_permissions() -> Optional[Permissions]:
    if user_permission_resolver is None:
        return None
    return user_permission_resolver()


def _domain_satisfies(domain: ProtectionDomain, permission: Permission,
                      phase: Optional[str] = None) -> bool:
    """Code-source grants, combined with user grants per Section 5.3."""
    if domain.implies(permission, phase):
        return True
    if domain.implies(_USER_PERMISSION, phase):
        user_perms = _user_permissions()
        if user_perms is not None and user_perms.implies(permission):
            return True
    return False


def _check_domain(domain: Optional[ProtectionDomain],
                  permission: Permission,
                  phase: Optional[str] = None) -> None:
    if domain is None:
        return  # host / boot frames are fully trusted
    if not _domain_satisfies(domain, permission, phase):
        raise AccessControlException(
            f"access denied to {domain.name}", permission)


def _walk(permission: Permission) -> None:
    """One stack walk, deduplicating domains by identity.

    With class loaders interning one domain per ``(code_source, policy)``,
    deep application stacks are dominated by repeats of the same domain —
    each is validated once per walk (the same identity dedupe
    :func:`get_context` applies when snapshotting), and the set is shared
    with the privileged frame's bounding context and the thread's
    inherited context.

    The execution-state MAC resolves the caller's lifecycle phase *once
    per walk* (never per domain) and threads it through every domain
    check, so phase-free deployments pay one global flag load and
    phase-aware ones pay one resolver call per check.
    """
    stack = _stack()
    seen: set[int] = set()
    phase = cache.current_phase() if cache.PHASE_AWARE else None
    for frame in reversed(stack):
        domain = frame.domain
        if domain is not None:
            key = id(domain)
            if key not in seen:
                seen.add(key)
                _check_domain(domain, permission, phase)
        if frame.privileged:
            if frame.context is not None:
                frame.context.check_permission(permission, _seen=seen,
                                               _phase=phase)
            return
    inherited = _inherited_context()
    if inherited is not None:
        inherited.check_permission(permission, _seen=seen, _phase=phase)


def check_permission(permission: Permission) -> None:
    """The JDK 1.2 stack walk, with the paper's user-based extension."""
    if check_observer is not None:
        return _check_permission_observed(permission)
    _walk(permission)


def _check_permission_observed(permission: Permission) -> None:
    """The same walk, reporting its outcome to :data:`check_observer`."""
    observer = check_observer
    try:
        _walk(permission)
    except AccessControlException:
        if observer is not None:
            observer(permission, False)
        raise
    if observer is not None:
        observer(permission, True)


def get_context() -> AccessControlContext:
    """Snapshot the effective context of the calling thread.

    Collects the distinct domains on the stack down to (and including) the
    nearest privileged frame, then appends the thread's inherited context if
    the walk ran off the bottom of the stack.
    """
    domains: list[ProtectionDomain] = []
    seen: set[int] = set()

    def _collect(domain: Optional[ProtectionDomain]) -> None:
        if domain is not None and id(domain) not in seen:
            seen.add(id(domain))
            domains.append(domain)

    stack = _stack()
    privileged_hit = False
    for frame in reversed(stack):
        _collect(frame.domain)
        if frame.privileged:
            if frame.context is not None:
                for domain in frame.context.domains:
                    _collect(domain)
            privileged_hit = True
            break
    if not privileged_hit:
        inherited = _inherited_context()
        if inherited is not None:
            for domain in inherited.domains:
                _collect(domain)
    return AccessControlContext(tuple(domains))


def snapshot_inherited_context() -> Optional[AccessControlContext]:
    """Context a newly created thread inherits from its creator."""
    context = get_context()
    if not context.domains:
        return None
    return context


def current_domain() -> Optional[ProtectionDomain]:
    """The protection domain of the most recent registered-class frame."""
    for frame in reversed(_stack()):
        if frame.domain is not None:
            return frame.domain
        if frame.privileged:
            break
    return None


class _FrameGuard:
    """Context manager pushing one frame onto the calling thread's stack."""

    __slots__ = ("_frame", "_stack_ref")

    def __init__(self, frame: _Frame):
        self._frame = frame
        self._stack_ref = None

    def __enter__(self) -> "_FrameGuard":
        self._stack_ref = _stack()
        self._stack_ref.append(self._frame)
        return self

    def __exit__(self, *exc_info) -> None:
        popped = self._stack_ref.pop()
        assert popped is self._frame, "access-control stack corrupted"


def stack_frame(domain: Optional[ProtectionDomain]) -> _FrameGuard:
    """Push ``domain`` for the duration of a registered-method invocation."""
    return _FrameGuard(_Frame(domain))


def do_privileged(action: Callable[[], object],
                  context: Optional[AccessControlContext] = None) -> object:
    """Run ``action`` with the caller's own privileges asserted.

    Permission checks made inside ``action`` stop their stack walk at this
    frame: only the caller's domain (and the optional ``context``) are
    consulted, not the callers further down.  This is what lets the trusted
    ``login`` program reset its running user (Section 5.2) and the trusted
    ``Font`` code read font files on behalf of an unprivileged application
    (Section 5.6) — and it is also why privileges are *lost* again as soon
    as the privileged code calls back into unprivileged code, preventing
    luring attacks.
    """
    frame = _Frame(current_domain(), privileged=True, context=context)
    with _FrameGuard(frame):
        return action()


def do_privileged_system(action: Callable[[], object]) -> object:
    """Run ``action`` with full system trust asserted.

    This is the analogue of trusted *boot-class-path* library code calling
    ``doPrivileged``: the walk stops at a frame with no (i.e. the fully
    trusted) domain.  Only JVM-internal code (the toolkit creating its
    X-connection thread in the system group, Section 5.4) uses this — it is
    not reachable through the registered-class invocation layer, just as
    application code cannot forge a boot-class-path stack frame.
    """
    frame = _Frame(None, privileged=True, context=None)
    with _FrameGuard(frame):
        return action()
