"""repro — a reproduction of Balfanz & Gong, *Experience with Secure
Multi-Processing in Java* (ICDCS 1998), as a pure-Python system.

The package builds a simulated JVM substrate (threads, thread groups,
class loaders, a JDK 1.2-style security architecture, an AWT-like toolkit
over a simulated X server, a virtual Unix file system, and a simulated
network) and implements the paper's multi-processing architecture on top:
applications as thread sets, users and user-based access control, reloaded
per-application System classes, the system security manager, and the
Section 6 tools (shell, terminal, login, Appletviewer).

Quickstart::

    from repro import ExecSpec, MultiProcVM, TerminalDevice

    mvm = MultiProcVM.boot()
    console = TerminalDevice("console")
    mvm.vm.consoles["console"] = console
    with mvm.host_session():
        mvm.launch(ExecSpec("tools.Terminal", ("console",)))
        console.type_line("alice")       # login:
        console.type_line("wonderland")  # Password:
        console.type_line("ls /home/alice | wc -l")
        ...

Every launch — local, cluster-scheduled, or remote — goes through one
door: build an :class:`ExecSpec` (optionally with a non-local
:class:`Placement`) and hand it to :func:`launch` (or the convenience
wrappers ``mvm.launch`` / ``ctx.launch``).  ``Application.exec``,
``MultiProcVM.exec``, ``Cluster.exec`` and ``remote_exec`` remain as
deprecated shims over the same path.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-claim-vs-measured record.
"""

from repro import sched
from repro.core.application import (
    Application,
    ApplicationRegistry,
    ExitStatus,
    ResourceLimitExceeded,
    ResourceLimits,
)
from repro.core.execspec import ExecSpec, Placement, launch
from repro.core.context import (
    current_application,
    current_application_or_none,
    current_user,
)
from repro.cluster import Cluster, ClusterApplication, PlacementError
from repro.core.launcher import DEFAULT_POLICY, MultiProcVM
from repro.core.sharing import SharedObjectSpace
from repro.dist.client import (
    DistributedApplication,
    RemoteApplication,
    remote_exec,
)
from repro.core.reload import RELOADABLE_CLASSES, ApplicationClassLoader
from repro.jvm.classloading import (
    ClassLoader,
    ClassMaterial,
    ClassRegistry,
    JClass,
    JObject,
)
from repro.jvm.errors import (
    AccessControlException,
    FileNotFoundException,
    IOException,
    JavaThrowable,
    SecurityException,
)
from repro.jvm.threads import JThread, ThreadGroup
from repro.jvm.vm import VirtualMachine
from repro.sched import (
    SchedEvent,
    Scheduler,
    Task,
    TaskWaiter,
    WaitPoint,
    sched_yield,
    spawn,
)
from repro.security.auth import JavaUser, UserDatabase
from repro.security.codesource import CodeSource, ProtectionDomain
from repro.security.permissions import (
    AllPermission,
    AWTPermission,
    FilePermission,
    Permission,
    Permissions,
    PropertyPermission,
    RuntimePermission,
    SocketPermission,
    UserPermission,
)
from repro.policytool import (
    PolicyDiff,
    PolicyRecorder,
    diff_policies,
    infer_policy,
    lint_policy,
    recorder_for,
)
from repro.security.policy import (
    PHASE_INIT,
    PHASE_SHUTDOWN,
    PHASE_STEADY,
    PHASES,
    Policy,
    paper_example_policy,
    parse_policy,
)
from repro.super import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    BackoffPolicy,
    FaultInjector,
    HealthProbe,
    InjectedFault,
    ServiceSpec,
    Supervisor,
)
from repro.tools.terminal import Terminal, TerminalDevice

__version__ = "1.0.0"

__all__ = [
    "Application", "ApplicationRegistry", "ApplicationClassLoader",
    "ExecSpec", "Placement", "launch", "ExitStatus",
    "ResourceLimits", "ResourceLimitExceeded", "SharedObjectSpace",
    "DistributedApplication", "RemoteApplication", "remote_exec",
    "Cluster", "ClusterApplication", "PlacementError",
    "Supervisor", "ServiceSpec", "BackoffPolicy", "HealthProbe",
    "AdmissionController", "AdmissionPolicy", "AdmissionRejected",
    "FaultInjector", "InjectedFault",
    "JObject",
    "MultiProcVM", "VirtualMachine", "DEFAULT_POLICY", "RELOADABLE_CLASSES",
    "current_application", "current_application_or_none", "current_user",
    "ClassLoader", "ClassMaterial", "ClassRegistry", "JClass",
    "JThread", "ThreadGroup",
    "sched", "Scheduler", "Task", "spawn", "sched_yield",
    "WaitPoint", "SchedEvent", "TaskWaiter",
    "JavaThrowable", "SecurityException", "AccessControlException",
    "IOException", "FileNotFoundException",
    "JavaUser", "UserDatabase", "CodeSource", "ProtectionDomain",
    "Permission", "Permissions", "AllPermission", "FilePermission",
    "RuntimePermission", "SocketPermission", "PropertyPermission",
    "AWTPermission", "UserPermission",
    "Policy", "parse_policy", "paper_example_policy",
    "PHASES", "PHASE_INIT", "PHASE_STEADY", "PHASE_SHUTDOWN",
    "PolicyRecorder", "PolicyDiff", "recorder_for",
    "infer_policy", "diff_policies", "lint_policy",
    "Terminal", "TerminalDevice",
    "__version__",
]
