"""``java.io``-style streams: byte arrays, pipes, print streams.

Streams carry the paper's ownership discipline from Section 5.1:

    "applications may only close streams that they opened.  Streams that are
    passed to them like the standard input and output streams must not be
    closed by the application."

Every stream records an ``owner`` (set by the application layer when an
application creates the stream); a pluggable module-level ``close_policy``
hook — installed by the multi-processing launcher — is consulted on every
``close()`` and may veto it with a ``SecurityException``.  In a plain
single-application VM the hook is absent and close behaves normally.

Piped streams (:func:`make_pipe`) are the transport behind the shell's
``|`` pipelines (Section 6.1) and the in-VM IPC measured by the Section 2
benchmarks.  They block co-operatively and are stop points, so the
application reaper can always tear a pipeline down.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.jvm.errors import (
    EOFException,
    IOException,
    StreamClosedException,
)
from repro.jvm.threads import interruptible_wait

#: Hook consulted on every stream close; installed by the multi-processing
#: launcher to enforce the Section 5.1 ownership rule.  Receives the stream;
#: raises to veto the close.
close_policy: Optional[Callable[["_StreamBase"], None]] = None

#: Hook receiving ``(stream, message)`` when the stream layer swallows an
#: error (Java's no-throw ``PrintStream`` discipline).  Installed by the
#: multi-processing launcher to route the diagnostic to the *current
#: application's* own ``System.err`` rather than the host process.
diagnostic_sink: Optional[Callable[["_StreamBase", str], None]] = None


def _report_diagnostic(stream: "_StreamBase", message: str) -> None:
    sink = diagnostic_sink
    if sink is None:
        return
    try:
        sink(stream, message)
    except Exception:
        pass  # diagnostics are best-effort by definition

DEFAULT_PIPE_CAPACITY = 64 * 1024


class _StreamBase:
    """State shared by all streams: closed flag and owner tracking."""

    def __init__(self):
        self.closed = False
        #: The application that opened this stream (set by the application
        #: layer); None for VM-created and host streams.
        self.owner = None

    def _ensure_open(self) -> None:
        if self.closed:
            raise StreamClosedException("stream is closed")

    def close(self) -> None:
        if self.closed:
            return
        if close_policy is not None:
            close_policy(self)
        self._close_impl()
        self.closed = True

    def _close_impl(self) -> None:
        """Subclass hook; runs once, before ``closed`` is set."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InputStream(_StreamBase):
    """Abstract byte-oriented input stream."""

    def read(self, size: int = -1) -> bytes:
        """Read up to ``size`` bytes (all remaining if negative).

        Returns ``b""`` only at end of stream.  Blocks until at least one
        byte is available or EOF is reached.
        """
        raise NotImplementedError

    def read_byte(self) -> int:
        """Read one byte; returns -1 at end of stream (Java semantics)."""
        chunk = self.read(1)
        return chunk[0] if chunk else -1

    def read_exactly(self, size: int) -> bytes:
        """Read exactly ``size`` bytes or raise :class:`EOFException`."""
        pieces: list[bytes] = []
        remaining = size
        while remaining > 0:
            chunk = self.read(remaining)
            if not chunk:
                raise EOFException(
                    f"expected {size} bytes, got {size - remaining}")
            pieces.append(chunk)
            remaining -= len(chunk)
        return b"".join(pieces)

    def read_line(self) -> Optional[bytes]:
        """Read one ``\\n``-terminated line (terminator stripped).

        Returns None at end of stream; a final unterminated line is
        returned as-is.
        """
        buffer = bytearray()
        while True:
            byte = self.read_byte()
            if byte < 0:
                return bytes(buffer) if buffer else None
            if byte == 0x0A:
                return bytes(buffer)
            buffer.append(byte)

    def read_all(self) -> bytes:
        pieces: list[bytes] = []
        while True:
            chunk = self.read(8192)
            if not chunk:
                return b"".join(pieces)
            pieces.append(chunk)

    def available(self) -> int:
        """Bytes readable without blocking (best effort)."""
        return 0


class OutputStream(_StreamBase):
    """Abstract byte-oriented output stream."""

    def write(self, payload: bytes) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Flush buffered bytes (no-op by default)."""


# --------------------------------------------------------------------------
# In-memory streams
# --------------------------------------------------------------------------

class ByteArrayInputStream(InputStream):
    """Reads from an in-memory byte string."""

    def __init__(self, payload: bytes):
        super().__init__()
        self._payload = bytes(payload)
        self._pos = 0

    def read(self, size: int = -1) -> bytes:
        self._ensure_open()
        if size is None or size < 0:
            chunk = self._payload[self._pos:]
        else:
            chunk = self._payload[self._pos:self._pos + size]
        self._pos += len(chunk)
        return chunk

    def available(self) -> int:
        return len(self._payload) - self._pos


class ByteArrayOutputStream(OutputStream):
    """Accumulates written bytes in memory."""

    def __init__(self):
        super().__init__()
        self._buffer = bytearray()
        self._lock = threading.Lock()

    def write(self, payload: bytes) -> None:
        self._ensure_open()
        with self._lock:
            self._buffer.extend(payload)

    def to_bytes(self) -> bytes:
        with self._lock:
            return bytes(self._buffer)

    def to_text(self, encoding: str = "utf-8") -> str:
        return self.to_bytes().decode(encoding)

    def reset(self) -> None:
        with self._lock:
            del self._buffer[:]

    def size(self) -> int:
        with self._lock:
            return len(self._buffer)


class NullInputStream(InputStream):
    """Always at end of stream (``/dev/null`` for reading)."""

    def read(self, size: int = -1) -> bytes:
        self._ensure_open()
        return b""


class NullOutputStream(OutputStream):
    """Discards everything (``/dev/null`` for writing)."""

    def write(self, payload: bytes) -> None:
        self._ensure_open()


# --------------------------------------------------------------------------
# Pipes
# --------------------------------------------------------------------------

class _Pipe:
    """Bounded byte channel shared by a Piped{Input,Output}Stream pair."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.buffer = bytearray()
        self.cond = threading.Condition()
        self.writer_closed = False
        self.reader_closed = False


class PipedInputStream(InputStream):
    """Read side of a pipe created by :func:`make_pipe`."""

    def __init__(self, pipe: _Pipe):
        super().__init__()
        self._pipe = pipe

    def read(self, size: int = -1) -> bytes:
        self._ensure_open()
        pipe = self._pipe
        with pipe.cond:
            interruptible_wait(
                pipe.cond,
                lambda: pipe.buffer or pipe.writer_closed
                or pipe.reader_closed)
            if pipe.reader_closed:
                # Our own side was closed while we were blocked — the
                # read can never be satisfied (a closed fd, not EOF).
                raise StreamClosedException("pipe reader closed")
            if not pipe.buffer and pipe.writer_closed:
                return b""
            if size is None or size < 0:
                chunk = bytes(pipe.buffer)
                del pipe.buffer[:]
            else:
                chunk = bytes(pipe.buffer[:size])
                del pipe.buffer[:size]
            pipe.cond.notify_all()
            return chunk

    def available(self) -> int:
        with self._pipe.cond:
            return len(self._pipe.buffer)

    def at_eof_hint(self) -> bool:
        """True when the next read is guaranteed to return EOF.

        Non-blocking; the connection pool uses it to drop channels whose
        peer already hung up before handing them out again.
        """
        with self._pipe.cond:
            return self._pipe.writer_closed and not self._pipe.buffer

    def _close_impl(self) -> None:
        pipe = self._pipe
        with pipe.cond:
            pipe.reader_closed = True
            pipe.cond.notify_all()


class PipedOutputStream(OutputStream):
    """Write side of a pipe created by :func:`make_pipe`.

    Writing to a pipe whose reader has gone away raises
    :class:`StreamClosedException` — the Java analogue of ``EPIPE``.
    """

    def __init__(self, pipe: _Pipe):
        super().__init__()
        self._pipe = pipe

    def write(self, payload) -> None:
        self._ensure_open()
        pipe = self._pipe
        # Accept bytes / bytearray / memoryview without copying: a
        # memoryview over the caller's buffer is enough, because each
        # chunk is consumed (extend copies it into the pipe) before the
        # lock is released.  Mutating a bytearray concurrently with a
        # blocking write is the caller's race, exactly as with os.write.
        view = payload if isinstance(payload, memoryview) \
            else memoryview(payload)
        offset = 0
        while offset < len(view):
            with pipe.cond:
                interruptible_wait(
                    pipe.cond,
                    lambda: pipe.reader_closed
                    or len(pipe.buffer) < pipe.capacity)
                if pipe.reader_closed:
                    raise StreamClosedException("pipe reader closed")
                room = pipe.capacity - len(pipe.buffer)
                chunk = view[offset:offset + room]
                pipe.buffer.extend(chunk)
                offset += len(chunk)
                pipe.cond.notify_all()

    def reader_gone_hint(self) -> bool:
        """True when the next write is guaranteed to raise (reader closed)."""
        with self._pipe.cond:
            return self._pipe.reader_closed

    def _close_impl(self) -> None:
        pipe = self._pipe
        with pipe.cond:
            pipe.writer_closed = True
            pipe.cond.notify_all()


def make_pipe(capacity: int = DEFAULT_PIPE_CAPACITY,
              owner=None) -> tuple[PipedInputStream, PipedOutputStream]:
    """Create a connected (reader, writer) pipe pair."""
    pipe = _Pipe(capacity)
    reader = PipedInputStream(pipe)
    writer = PipedOutputStream(pipe)
    reader.owner = owner
    writer.owner = owner
    return reader, writer


# --------------------------------------------------------------------------
# Buffered streams — the transport fast path
# --------------------------------------------------------------------------

#: Default buffer size for the buffered stream wrappers.
DEFAULT_BUFFER_SIZE = 8192


class BufferedInputStream(InputStream):
    """Bulk-reading wrapper: pipe lock traffic scales with chunks, not bytes.

    ``read_line`` on a bare :class:`PipedInputStream` costs one pipe
    condition-variable acquisition *per byte* (``read_byte`` → ``read``).
    This wrapper pulls ``buffer_size`` bytes per underlying ``read`` and
    serves ``read`` / ``read_byte`` / ``read_line`` / ``read_exactly``
    from the in-memory chunk; ``read_line`` scans with ``bytes.find``.

    ``peek_byte`` looks at the next byte without consuming it — the
    dist protocol's wire-format sniff (JSON line vs binary frame) needs
    exactly one byte of lookahead.
    """

    def __init__(self, source: InputStream,
                 buffer_size: int = DEFAULT_BUFFER_SIZE):
        super().__init__()
        self._source = source
        self._buffer_size = max(1, buffer_size)
        self._chunk = b""
        self._pos = 0

    @property
    def source(self) -> InputStream:
        return self._source

    def _buffered(self) -> int:
        return len(self._chunk) - self._pos

    def _fill(self) -> bool:
        """Refill the internal chunk; False at end of stream."""
        self._chunk = self._source.read(self._buffer_size)
        self._pos = 0
        return bool(self._chunk)

    def read(self, size: int = -1) -> bytes:
        self._ensure_open()
        if size is not None and size == 0:
            return b""
        if self._buffered():
            if size is None or size < 0:
                chunk = self._chunk[self._pos:]
                self._pos = len(self._chunk)
            else:
                chunk = self._chunk[self._pos:self._pos + size]
                self._pos += len(chunk)
            return chunk
        # Nothing buffered: large reads go straight through, small ones
        # refill the buffer first.
        if size is not None and 0 <= size < self._buffer_size:
            if not self._fill():
                return b""
            chunk = self._chunk[self._pos:self._pos + size]
            self._pos += len(chunk)
            return chunk
        return self._source.read(size)

    def read_byte(self) -> int:
        self._ensure_open()
        if self._pos >= len(self._chunk) and not self._fill():
            return -1
        byte = self._chunk[self._pos]
        self._pos += 1
        return byte

    def peek_byte(self) -> int:
        """The next byte without consuming it; -1 at end of stream."""
        self._ensure_open()
        if self._pos >= len(self._chunk) and not self._fill():
            return -1
        return self._chunk[self._pos]

    def read_line(self) -> Optional[bytes]:
        self._ensure_open()
        pieces: list[bytes] = []
        while True:
            if self._pos >= len(self._chunk) and not self._fill():
                if pieces:
                    return b"".join(pieces)
                return None
            newline = self._chunk.find(b"\n", self._pos)
            if newline >= 0:
                pieces.append(self._chunk[self._pos:newline])
                self._pos = newline + 1
                return b"".join(pieces)
            pieces.append(self._chunk[self._pos:])
            self._pos = len(self._chunk)

    def read_exactly(self, size: int) -> bytes:
        self._ensure_open()
        pieces: list[bytes] = []
        remaining = size
        while remaining > 0:
            if not self._buffered() and remaining >= self._buffer_size:
                # Large remainder: bypass the buffer entirely.
                chunk = self._source.read(remaining)
                if not chunk:
                    raise EOFException(
                        f"expected {size} bytes, got {size - remaining}")
            else:
                chunk = self.read(remaining)
                if not chunk:
                    raise EOFException(
                        f"expected {size} bytes, got {size - remaining}")
            pieces.append(chunk)
            remaining -= len(chunk)
        return b"".join(pieces)

    def available(self) -> int:
        return self._buffered() + self._source.available()

    def at_eof_hint(self) -> bool:
        """Non-blocking EOF probe (see PipedInputStream.at_eof_hint)."""
        if self._buffered():
            return False
        hint = getattr(self._source, "at_eof_hint", None)
        return hint() if hint is not None else False

    def _close_impl(self) -> None:
        self._source.close()


class BufferedOutputStream(OutputStream):
    """Write-combining wrapper with explicit ``flush``.

    Small writes accumulate in an internal buffer and reach the
    underlying stream (one pipe lock acquisition per drain) when the
    buffer fills or ``flush`` is called; writes at least as large as the
    buffer bypass it.
    """

    def __init__(self, sink: OutputStream,
                 buffer_size: int = DEFAULT_BUFFER_SIZE):
        super().__init__()
        self._sink = sink
        self._buffer_size = max(1, buffer_size)
        self._buffer = bytearray()
        self._lock = threading.RLock()

    @property
    def sink(self) -> OutputStream:
        return self._sink

    def buffered_count(self) -> int:
        with self._lock:
            return len(self._buffer)

    def _drain(self) -> None:
        if self._buffer:
            payload = bytes(self._buffer)
            del self._buffer[:]
            self._sink.write(payload)

    def write(self, payload) -> None:
        self._ensure_open()
        with self._lock:
            if not self._buffer and len(payload) >= self._buffer_size:
                self._sink.write(payload)
                return
            self._buffer.extend(payload)
            if len(self._buffer) >= self._buffer_size:
                self._drain()

    def flush(self) -> None:
        with self._lock:
            self._drain()
            self._sink.flush()

    def reader_gone_hint(self) -> bool:
        """Non-blocking EPIPE probe (see PipedOutputStream)."""
        hint = getattr(self._sink, "reader_gone_hint", None)
        return hint() if hint is not None else False

    def _close_impl(self) -> None:
        with self._lock:
            try:
                self._drain()
                self._sink.flush()
            finally:
                self._sink.close()


# --------------------------------------------------------------------------
# Print streams and readers
# --------------------------------------------------------------------------

class PrintStream(OutputStream):
    """Character-friendly output with Java's no-throw discipline.

    A ``PrintStream`` never raises :class:`IOException`; failures set an
    internal flag readable via :meth:`check_error`.  This matters for the
    multi-application VM: an application whose output pipe disappears keeps
    running (Section 5.1 discusses shared standard streams).
    """

    def __init__(self, out: OutputStream, auto_flush: bool = True,
                 encoding: str = "utf-8"):
        super().__init__()
        self._out = out
        self._auto_flush = auto_flush
        self._encoding = encoding
        self._error = False
        self._lock = threading.RLock()

    @property
    def target(self) -> OutputStream:
        return self._out

    def _note_error(self, where: str, exc: IOException) -> None:
        # Report only on the transition into the error state so a wedged
        # stream produces one diagnostic, not one per print call.  A closed
        # pipe is the Unix SIGPIPE analogue — routine pipeline shutdown,
        # surfaced via check_error() — so it stays silent.
        if not self._error:
            self._error = True
            if not isinstance(exc, StreamClosedException):
                _report_diagnostic(
                    self, f"PrintStream {where} failed: {exc}")

    def write(self, payload) -> None:
        if isinstance(payload, str):
            payload = payload.encode(self._encoding)
        with self._lock:
            try:
                self._out.write(payload)
                if self._auto_flush:
                    self._out.flush()
            except IOException as exc:
                self._note_error("write", exc)

    def print(self, value: object = "") -> None:
        self.write(str(value))

    def println(self, value: object = "") -> None:
        self.write(str(value) + "\n")

    def printf(self, template: str, *args: object) -> None:
        self.write(template % args if args else template)

    def check_error(self) -> bool:
        with self._lock:
            try:
                self._out.flush()
            except IOException as exc:
                self._note_error("flush", exc)
            return self._error

    def flush(self) -> None:
        with self._lock:
            try:
                self._out.flush()
            except IOException as exc:
                self._note_error("flush", exc)

    def _close_impl(self) -> None:
        try:
            self._out.close()
        except IOException as exc:
            self._note_error("close", exc)


class LineReader:
    """Buffered text reader over an :class:`InputStream`.

    The terminal and shell (Section 6) read user input line by line; this
    is their ``BufferedReader``.
    """

    def __init__(self, source: InputStream, encoding: str = "utf-8"):
        self._source = source
        self._encoding = encoding

    def read_line(self) -> Optional[str]:
        """One line without its terminator; None at end of stream."""
        raw = self._source.read_line()
        if raw is None:
            return None
        return raw.decode(self._encoding, errors="replace")

    def read_all(self) -> str:
        return self._source.read_all().decode(self._encoding,
                                              errors="replace")

    def close(self) -> None:
        self._source.close()


class TeeOutputStream(OutputStream):
    """Duplicates writes to two underlying streams (used by tests)."""

    def __init__(self, first: OutputStream, second: OutputStream):
        super().__init__()
        self._first = first
        self._second = second

    def write(self, payload: bytes) -> None:
        self._ensure_open()
        self._first.write(payload)
        self._second.write(payload)

    def flush(self) -> None:
        self._first.flush()
        self._second.flush()


class CountingOutputStream(OutputStream):
    """Counts bytes written; sink for throughput benchmarks."""

    def __init__(self):
        super().__init__()
        self.count = 0

    def write(self, payload: bytes) -> None:
        self._ensure_open()
        self.count += len(payload)


class HostOutputStream(OutputStream):
    """Adapter onto a real Python file object (host stdout/stderr)."""

    def __init__(self, fileobj):
        super().__init__()
        self._fileobj = fileobj

    def write(self, payload: bytes) -> None:
        self._ensure_open()
        if hasattr(self._fileobj, "buffer"):
            self._fileobj.buffer.write(payload)
        else:
            self._fileobj.write(payload.decode("utf-8", errors="replace"))

    def flush(self) -> None:
        self._fileobj.flush()

    def _close_impl(self) -> None:
        # Never close the host's real stdio.
        self.flush()


class HostInputStream(InputStream):
    """Adapter onto a real Python file object (host stdin)."""

    def __init__(self, fileobj):
        super().__init__()
        self._fileobj = fileobj

    def read(self, size: int = -1) -> bytes:
        self._ensure_open()
        raw = self._fileobj.buffer if hasattr(self._fileobj, "buffer") \
            else self._fileobj
        data = raw.read(size if size is not None and size >= 0 else -1)
        if isinstance(data, str):
            data = data.encode("utf-8")
        return data or b""
