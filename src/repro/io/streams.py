"""``java.io``-style streams: byte arrays, pipes, print streams.

Streams carry the paper's ownership discipline from Section 5.1:

    "applications may only close streams that they opened.  Streams that are
    passed to them like the standard input and output streams must not be
    closed by the application."

Every stream records an ``owner`` (set by the application layer when an
application creates the stream); a pluggable module-level ``close_policy``
hook — installed by the multi-processing launcher — is consulted on every
``close()`` and may veto it with a ``SecurityException``.  In a plain
single-application VM the hook is absent and close behaves normally.

Piped streams (:func:`make_pipe`) are the transport behind the shell's
``|`` pipelines (Section 6.1) and the in-VM IPC measured by the Section 2
benchmarks.  They block co-operatively and are stop points, so the
application reaper can always tear a pipeline down.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.jvm.errors import (
    EOFException,
    IOException,
    StreamClosedException,
)
from repro.sched.timers import wait_until
from repro.sched.waitobj import WaitPoint

#: Hook consulted on every stream close; installed by the multi-processing
#: launcher to enforce the Section 5.1 ownership rule.  Receives the stream;
#: raises to veto the close.
close_policy: Optional[Callable[["_StreamBase"], None]] = None

#: Hook receiving ``(stream, message)`` when the stream layer swallows an
#: error (Java's no-throw ``PrintStream`` discipline).  Installed by the
#: multi-processing launcher to route the diagnostic to the *current
#: application's* own ``System.err`` rather than the host process.
diagnostic_sink: Optional[Callable[["_StreamBase", str], None]] = None


def _report_diagnostic(stream: "_StreamBase", message: str) -> None:
    sink = diagnostic_sink
    if sink is None:
        return
    try:
        sink(stream, message)
    except Exception:
        pass  # diagnostics are best-effort by definition

#: Logical bound on buffered pipe bytes before a writer blocks.  The ring
#: backing store starts at :attr:`RingPipe.INITIAL_SIZE` (8 KiB) and only
#: grows toward this ceiling under sustained pressure, so the generous
#: default costs nothing for chatty low-volume pipes while letting bulk
#: transfers amortize the reader/writer condition handoff (the dominant
#: IPC cost) over 8x more bytes than the old 64 KiB bound.
DEFAULT_PIPE_CAPACITY = 512 * 1024


class _StreamBase:
    """State shared by all streams: closed flag and owner tracking."""

    def __init__(self):
        self.closed = False
        #: The application that opened this stream (set by the application
        #: layer); None for VM-created and host streams.
        self.owner = None

    def _ensure_open(self) -> None:
        if self.closed:
            raise StreamClosedException("stream is closed")

    def close(self) -> None:
        if self.closed:
            return
        if close_policy is not None:
            close_policy(self)
        self._close_impl()
        self.closed = True

    def _close_impl(self) -> None:
        """Subclass hook; runs once, before ``closed`` is set."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InputStream(_StreamBase):
    """Abstract byte-oriented input stream."""

    def read(self, size: int = -1) -> bytes:
        """Read up to ``size`` bytes (all remaining if negative).

        Returns ``b""`` only at end of stream.  Blocks until at least one
        byte is available or EOF is reached.
        """
        raise NotImplementedError

    def read_byte(self) -> int:
        """Read one byte; returns -1 at end of stream (Java semantics)."""
        chunk = self.read(1)
        return chunk[0] if chunk else -1

    def read_exactly(self, size: int) -> bytes:
        """Read exactly ``size`` bytes or raise :class:`EOFException`."""
        pieces: list[bytes] = []
        remaining = size
        while remaining > 0:
            chunk = self.read(remaining)
            if not chunk:
                raise EOFException(
                    f"expected {size} bytes, got {size - remaining}")
            pieces.append(chunk)
            remaining -= len(chunk)
        return b"".join(pieces)

    def read_line(self) -> Optional[bytes]:
        """Read one ``\\n``-terminated line (terminator stripped).

        Returns None at end of stream; a final unterminated line is
        returned as-is.
        """
        buffer = bytearray()
        while True:
            byte = self.read_byte()
            if byte < 0:
                return bytes(buffer) if buffer else None
            if byte == 0x0A:
                return bytes(buffer)
            buffer.append(byte)

    def read_all(self) -> bytes:
        pieces: list[bytes] = []
        while True:
            chunk = self.read(8192)
            if not chunk:
                return b"".join(pieces)
            pieces.append(chunk)

    def available(self) -> int:
        """Bytes readable without blocking (best effort)."""
        return 0


class OutputStream(_StreamBase):
    """Abstract byte-oriented output stream."""

    def write(self, payload: bytes) -> None:
        raise NotImplementedError

    def writev(self, segments) -> None:
        """Write all ``segments`` in order (gather-write).

        The default is a plain loop; sinks with per-write overhead worth
        batching (pipes, buffered streams) override it to pay that
        overhead once for the whole vector.
        """
        for segment in segments:
            self.write(segment)

    def flush(self) -> None:
        """Flush buffered bytes (no-op by default)."""


# --------------------------------------------------------------------------
# In-memory streams
# --------------------------------------------------------------------------

class ByteArrayInputStream(InputStream):
    """Reads from an in-memory byte string."""

    def __init__(self, payload: bytes):
        super().__init__()
        self._payload = bytes(payload)
        self._pos = 0

    def read(self, size: int = -1) -> bytes:
        self._ensure_open()
        if size is None or size < 0:
            chunk = self._payload[self._pos:]
        else:
            chunk = self._payload[self._pos:self._pos + size]
        self._pos += len(chunk)
        return chunk

    def available(self) -> int:
        return len(self._payload) - self._pos


class ByteArrayOutputStream(OutputStream):
    """Accumulates written bytes in memory."""

    def __init__(self):
        super().__init__()
        self._buffer = bytearray()
        self._lock = threading.Lock()

    def write(self, payload: bytes) -> None:
        self._ensure_open()
        with self._lock:
            self._buffer.extend(payload)

    def to_bytes(self) -> bytes:
        with self._lock:
            return bytes(self._buffer)

    def to_text(self, encoding: str = "utf-8") -> str:
        return self.to_bytes().decode(encoding)

    def reset(self) -> None:
        with self._lock:
            del self._buffer[:]

    def size(self) -> int:
        with self._lock:
            return len(self._buffer)


class NullInputStream(InputStream):
    """Always at end of stream (``/dev/null`` for reading)."""

    def read(self, size: int = -1) -> bytes:
        self._ensure_open()
        return b""


class NullOutputStream(OutputStream):
    """Discards everything (``/dev/null`` for writing)."""

    def write(self, payload: bytes) -> None:
        self._ensure_open()


# --------------------------------------------------------------------------
# Pipes — the ring-buffer IPC fast path
# --------------------------------------------------------------------------

class _RingTotals:
    """Process-wide rollup of ring-pipe activity (vmstat / ``/proc/ipc``).

    Updated while the owning pipe's condition is held, so increments are
    serialized per pipe; cross-pipe interleavings can in principle lose an
    increment, which is acceptable for telemetry (same stance as the
    metrics registry's lock-cheap counters).
    """

    __slots__ = ("wakeups", "suppressed_wakeups", "zero_copy_bytes",
                 "copies")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.wakeups = 0
        self.suppressed_wakeups = 0
        self.zero_copy_bytes = 0
        self.copies = 0

    def snapshot(self) -> dict:
        return {"wakeups": self.wakeups,
                "suppressed_wakeups": self.suppressed_wakeups,
                "zero_copy_bytes": self.zero_copy_bytes,
                "copies": self.copies}


#: Module-wide ring-pipe counters, surfaced by ``/proc/ipc/ring`` and the
#: ``ipc.ring.*`` vmstat lines.
RING_STATS = _RingTotals()


class RingPipe:
    """Fixed-capacity ring buffer shared by a Piped{Input,Output}Stream pair.

    The intra-VM data plane's core: a power-of-two backing store indexed
    by monotonically increasing head/tail counters (``index = pos & mask``)
    so neither side ever shifts bytes (the old ``bytearray`` channel paid
    a ``del buffer[:size]`` memmove per read and materialized *two* copies
    per read: the slice and then ``bytes()`` of it).  Here:

    * writes copy the caller's bytes straight into the ring (one copy);
    * reads materialize at most one ``bytes`` object per contiguous
      segment straight from the ring (one copy; two segment copies only
      at the wrap seam), or hand borrowed ``memoryview`` segments to a
      consumer under the lock (zero copies) via :meth:`drain_into`;
    * wakeups are **edge-triggered**: writers notify only on the
      empty→non-empty transition, readers only on full→non-full, instead
      of once per chunk — a blocked peer can only be waiting on one of
      those two edges, so every other notify was pure lock churn.

    The logical ``capacity`` (what bounds a blocked writer) may be smaller
    than the power-of-two physical size; all invariants are on the logical
    bound.
    """

    __slots__ = ("capacity", "_limit", "_size", "_mask", "_buf", "_view",
                 "_head", "_tail", "cond", "writer_closed", "reader_closed",
                 "wakeups", "suppressed_wakeups", "zero_copy_bytes",
                 "copies", "_folded")

    #: Physical size a fresh ring starts at; it doubles on demand up to
    #: the capacity ceiling, so a mostly-idle pipe costs 8 KiB, not the
    #: full (possibly large) default capacity.
    INITIAL_SIZE = 8192

    def __init__(self, capacity: int):
        self.capacity = max(1, int(capacity))
        limit = 1
        while limit < self.capacity:
            limit <<= 1
        #: Largest physical size the ring may grow to (pow2 >= capacity).
        self._limit = limit
        size = min(limit, self.INITIAL_SIZE)
        self._size = size
        self._mask = size - 1
        self._buf = bytearray(size)
        self._view = memoryview(self._buf)
        #: Monotonic byte counters; ``tail - head`` is the fill level.
        self._head = 0
        self._tail = 0
        # A plain Lock, not the Condition default RLock: every acquisition
        # in this module is flat (the ``_``-accessors and
        # ``_write_blocking`` run with ``cond`` already held and never
        # re-acquire), and the non-reentrant lock is measurably cheaper on
        # the per-chunk hot path.  A WaitPoint (condvar-compatible) so
        # continuation tasks can park on the pipe without an OS thread.
        self.cond = WaitPoint(threading.Lock())
        self.writer_closed = False
        self.reader_closed = False
        self.wakeups = 0
        self.suppressed_wakeups = 0
        self.zero_copy_bytes = 0
        self.copies = 0
        self._folded = None

    # All _-prefixed accessors assume ``cond`` is held.

    def _used(self) -> int:
        return self._tail - self._head

    def _grow(self, need: int) -> None:
        """Grow the physical store straight to the capacity ceiling,
        linearizing the current content to offset 0.

        One-shot rather than doubling: a pipe that outgrows its initial
        8 KiB is a bulk pipe and will hit the ceiling almost immediately
        under sustained pressure anyway, so doubling would just pay
        O(capacity) in repeated linearize copies (25% of transferred
        bytes at a 1 MiB capacity) for no memory savings that matter.
        ``need`` is kept for the call-site contract; any grow satisfies
        it because ``need <= capacity <= limit``.
        """
        new_size = self._limit
        if new_size == self._size:
            return
        used = self._tail - self._head
        new_buf = bytearray(new_size)
        if used:
            pos = 0
            for segment in self._segments(used):
                new_buf[pos:pos + len(segment)] = segment
                pos += len(segment)
        self._view.release()
        self._buf = new_buf
        self._view = memoryview(new_buf)
        self._size = new_size
        self._mask = new_size - 1
        self._head = 0
        self._tail = used

    def _put(self, view, offset: int) -> int:
        """Copy as many bytes as fit from ``view[offset:]``; return count.

        ``view`` may be raw ``bytes`` when it is being written whole
        (``offset == 0`` covering the full payload) — the unwrapped fast
        path assigns it without materializing a slice; the wrap seam
        wraps locally so segment slicing stays copy-free.
        """
        used = self._tail - self._head
        n = self.capacity - used
        if n <= 0:
            return 0
        remaining = len(view) - offset
        if remaining < n:
            n = remaining
        if n > self._size - used:
            self._grow(used + n)
            free = self._size - used
            if n > free:
                n = free
        i = self._tail & self._mask
        end = i + n
        if end <= self._size:
            if offset == 0 and n == len(view):
                self._view[i:end] = view
            else:
                self._view[i:end] = view[offset:offset + n]
            self.copies += 1
        else:
            if not isinstance(view, memoryview):
                view = memoryview(view)
            first = self._size - i
            self._view[i:] = view[offset:offset + first]
            self._view[:n - first] = view[offset + first:offset + n]
            self.copies += 2
        self._tail += n
        return n

    def _take(self, n: int) -> bytes:
        """Materialize ``n`` buffered bytes with one copy per segment."""
        head = self._head
        i = head & self._mask
        end = i + n
        if end <= self._size:
            chunk = bytes(self._view[i:end])
            self.copies += 1
        else:
            # Wrap seam: join copies each segment exactly once.
            chunk = b"".join((self._view[i:], self._view[:end - self._size]))
            self.copies += 2
        self._head = head + n
        self.zero_copy_bytes += n
        return chunk

    def _segments(self, n: int) -> list:
        """Borrowed memoryview segments over ``n`` buffered bytes.

        Valid only while ``cond`` is held and before the head advances
        past them — the zero-copy handoff behind :meth:`drain_into`.
        """
        i = self._head & self._mask
        end = i + n
        if end <= self._size:
            return [self._view[i:end]]
        return [self._view[i:], self._view[:end - self._size]]

    def _notify_edge(self) -> None:
        self.wakeups += 1
        self.cond.notify_all()

    def _fold_totals(self) -> None:
        """Roll this pipe's counters into :data:`RING_STATS` (called at
        each side's close, delta-based) — the hot paths touch only
        pipe-local ints, never the process-wide rollup."""
        folded = self._folded or (0, 0, 0, 0)
        RING_STATS.wakeups += self.wakeups - folded[0]
        RING_STATS.suppressed_wakeups += self.suppressed_wakeups - folded[1]
        RING_STATS.zero_copy_bytes += self.zero_copy_bytes - folded[2]
        RING_STATS.copies += self.copies - folded[3]
        self._folded = (self.wakeups, self.suppressed_wakeups,
                        self.zero_copy_bytes, self.copies)

    def stats(self) -> dict:
        with self.cond:
            return {"wakeups": self.wakeups,
                    "suppressed_wakeups": self.suppressed_wakeups,
                    "zero_copy_bytes": self.zero_copy_bytes,
                    "copies": self.copies,
                    "buffered": self._tail - self._head,
                    "capacity": self.capacity}


class PipedInputStream(InputStream):
    """Read side of a pipe created by :func:`make_pipe`."""

    def __init__(self, pipe: RingPipe):
        super().__init__()
        self._pipe = pipe

    def read(self, size: int = -1) -> bytes:
        self._ensure_open()
        pipe = self._pipe
        with pipe.cond:
            if pipe._tail == pipe._head and not (
                    pipe.writer_closed or pipe.reader_closed):
                # Slow path only when there is genuinely nothing to read.
                wait_until(
                    pipe.cond,
                    lambda: pipe._tail != pipe._head or pipe.writer_closed
                    or pipe.reader_closed)
            if pipe.reader_closed:
                # Our own side was closed while we were blocked — the
                # read can never be satisfied (a closed fd, not EOF).
                raise StreamClosedException("pipe reader closed")
            used = pipe._tail - pipe._head
            if not used and pipe.writer_closed:
                return b""
            n = used if (size is None or size < 0) else min(size, used)
            chunk = pipe._take(n)
            if used >= pipe.capacity and n:
                pipe._notify_edge()  # full → non-full: a writer may wait
            elif n:
                pipe.suppressed_wakeups += 1
            return chunk

    def drain_into(self, consumer, max_bytes: int = -1) -> int:
        """``readv``-style zero-copy drain.

        Blocks for data, then calls ``consumer(segments)`` with the
        ring's borrowed :class:`memoryview` segments (at most two — one
        per side of the wrap seam) *while the pipe lock is held*; the
        bytes are consumed when the consumer returns, with no
        intermediate ``bytes`` materialization at all.  Returns the
        number of bytes drained; 0 at end of stream.

        The consumer must not call back into this pipe (the lock is not
        reentrant) and must not retain the views past its return.
        """
        self._ensure_open()
        pipe = self._pipe
        with pipe.cond:
            if pipe._tail == pipe._head and not (
                    pipe.writer_closed or pipe.reader_closed):
                wait_until(
                    pipe.cond,
                    lambda: pipe._tail != pipe._head or pipe.writer_closed
                    or pipe.reader_closed)
            if pipe.reader_closed:
                raise StreamClosedException("pipe reader closed")
            used = pipe._tail - pipe._head
            if not used:
                return 0
            n = used if max_bytes is None or max_bytes < 0 \
                else min(max_bytes, used)
            segments = pipe._segments(n)
            try:
                consumer(segments)
            finally:
                for segment in segments:
                    segment.release()
            pipe._head += n
            pipe.zero_copy_bytes += n
            if used >= pipe.capacity and n:
                pipe._notify_edge()
            elif n:
                pipe.suppressed_wakeups += 1
            return n

    def try_read(self, size: int = -1) -> Optional[bytes]:
        """Non-blocking read: bytes, ``b""`` at EOF, None if it would block.

        The task-side entry point (``repro.sched.ops.read`` loops on
        this plus :meth:`wait_point`), and generally useful for pollers.
        """
        self._ensure_open()
        pipe = self._pipe
        with pipe.cond:
            if pipe.reader_closed:
                raise StreamClosedException("pipe reader closed")
            used = pipe._tail - pipe._head
            if not used:
                return b"" if pipe.writer_closed else None
            n = used if (size is None or size < 0) else min(size, used)
            if not n:
                return b""
            chunk = pipe._take(n)
            if used >= pipe.capacity:
                pipe._notify_edge()  # full → non-full: a writer may wait
            else:
                pipe.suppressed_wakeups += 1
            return chunk

    def readable_hint(self) -> bool:
        """True when a read would not block (data, EOF, or closed).

        Lock-free predicate for ``wait_on``; callers re-check under the
        wait-point lock, so a stale read here only costs a retry.
        """
        pipe = self._pipe
        return (pipe._tail != pipe._head or pipe.writer_closed
                or pipe.reader_closed)

    def wait_point(self) -> WaitPoint:
        """The pipe's wait object (for task-side parking)."""
        return self._pipe.cond

    def available(self) -> int:
        with self._pipe.cond:
            return self._pipe._tail - self._pipe._head

    def at_eof_hint(self) -> bool:
        """True when the next read is guaranteed to return EOF.

        Non-blocking; the connection pool uses it to drop channels whose
        peer already hung up before handing them out again.
        """
        with self._pipe.cond:
            return self._pipe.writer_closed \
                and self._pipe._tail == self._pipe._head

    def _close_impl(self) -> None:
        pipe = self._pipe
        with pipe.cond:
            pipe.reader_closed = True
            pipe._fold_totals()
            pipe.cond.notify_all()


class PipedOutputStream(OutputStream):
    """Write side of a pipe created by :func:`make_pipe`.

    Writing to a pipe whose reader has gone away raises
    :class:`StreamClosedException` — the Java analogue of ``EPIPE``.
    """

    def __init__(self, pipe: RingPipe):
        super().__init__()
        self._pipe = pipe

    def write(self, payload) -> None:
        if self.closed:
            raise StreamClosedException("stream is closed")
        # Accept bytes / bytearray / memoryview without copying into an
        # intermediate: each chunk is consumed (copied into the ring)
        # before the lock is released.  Mutating a bytearray concurrently
        # with a blocking write is the caller's race, as with os.write.
        pipe = self._pipe
        with pipe.cond:
            if pipe.reader_closed:
                raise StreamClosedException("pipe reader closed")
            total = len(payload)
            if not total:
                return
            tail = pipe._tail
            used = tail - pipe._head
            if used + total <= pipe.capacity:
                # Fast path: the whole payload fits — one copy, no
                # wrapper objects, and a wakeup only on the
                # empty → non-empty edge.  The slice-assign is inlined
                # for the common unwrapped case (both guards matter:
                # ``total <= _size - used`` keeps us off unread bytes
                # when the ring hasn't physically grown yet, ``end <=
                # _size`` keeps us off the wrap seam).
                i = tail & pipe._mask
                end = i + total
                if end <= pipe._size and total <= pipe._size - used:
                    pipe._view[i:end] = payload
                    pipe.copies += 1
                    pipe._tail = tail + total
                else:
                    pipe._put(payload, 0)
                if used == 0:
                    pipe.wakeups += 1
                    pipe.cond.notify_all()
                else:
                    pipe.suppressed_wakeups += 1
                return
            self._write_blocking(pipe, memoryview(payload))

    def _write_blocking(self, pipe: RingPipe, view: memoryview) -> None:
        """Capacity-bounded write loop (``pipe.cond`` held)."""
        total = len(view)
        offset = 0
        while True:
            if pipe.reader_closed:
                raise StreamClosedException("pipe reader closed")
            was_empty = pipe._tail == pipe._head
            n = pipe._put(view, offset)
            offset += n
            if n:
                if was_empty:
                    pipe._notify_edge()  # empty → non-empty
                else:
                    pipe.suppressed_wakeups += 1
            if offset >= total:
                return
            wait_until(
                pipe.cond,
                lambda: pipe.reader_closed
                or pipe._tail - pipe._head < pipe.capacity)

    def writev(self, segments) -> None:
        """Gather-write all ``segments`` in one lock session.

        The vectored entry point: N coalesced frames cost one condition
        acquisition (plus capacity waits), not N ``write()`` calls.
        """
        self._ensure_open()
        pipe = self._pipe
        with pipe.cond:
            for segment in segments:
                if pipe.reader_closed:
                    raise StreamClosedException("pipe reader closed")
                total = len(segment)
                if not total:
                    continue
                used = pipe._tail - pipe._head
                if used + total <= pipe.capacity:
                    pipe._put(segment, 0)
                    if used == 0:
                        pipe._notify_edge()
                    else:
                        pipe.suppressed_wakeups += 1
                else:
                    self._write_blocking(pipe, memoryview(segment))

    def reader_gone_hint(self) -> bool:
        """True when the next write is guaranteed to raise (reader closed)."""
        with self._pipe.cond:
            return self._pipe.reader_closed

    def _close_impl(self) -> None:
        pipe = self._pipe
        with pipe.cond:
            pipe.writer_closed = True
            pipe._fold_totals()
            pipe.cond.notify_all()


# -- the legacy bytearray channel, kept for ring-vs-legacy benchmarking ----

class _LegacyPipe:
    """The pre-ring bounded channel: one shared ``bytearray``."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.buffer = bytearray()
        self.cond = WaitPoint()
        self.writer_closed = False
        self.reader_closed = False


class _LegacyPipedInputStream(PipedInputStream):
    """Read side of a legacy pipe: double-copy reads, notify per chunk."""

    def read(self, size: int = -1) -> bytes:
        self._ensure_open()
        pipe = self._pipe
        with pipe.cond:
            wait_until(
                pipe.cond,
                lambda: pipe.buffer or pipe.writer_closed
                or pipe.reader_closed)
            if pipe.reader_closed:
                raise StreamClosedException("pipe reader closed")
            if not pipe.buffer and pipe.writer_closed:
                return b""
            if size is None or size < 0:
                chunk = bytes(pipe.buffer)
                del pipe.buffer[:]
            else:
                chunk = bytes(pipe.buffer[:size])
                del pipe.buffer[:size]
            pipe.cond.notify_all()
            return chunk

    def drain_into(self, consumer, max_bytes: int = -1) -> int:
        raise NotImplementedError("legacy pipes have no zero-copy drain")

    def try_read(self, size: int = -1) -> Optional[bytes]:
        self._ensure_open()
        pipe = self._pipe
        with pipe.cond:
            if pipe.reader_closed:
                raise StreamClosedException("pipe reader closed")
            if not pipe.buffer:
                return b"" if pipe.writer_closed else None
            if size is None or size < 0:
                chunk = bytes(pipe.buffer)
                del pipe.buffer[:]
            else:
                chunk = bytes(pipe.buffer[:size])
                del pipe.buffer[:size]
            pipe.cond.notify_all()
            return chunk

    def readable_hint(self) -> bool:
        pipe = self._pipe
        return bool(pipe.buffer) or pipe.writer_closed or pipe.reader_closed

    def available(self) -> int:
        with self._pipe.cond:
            return len(self._pipe.buffer)

    def at_eof_hint(self) -> bool:
        with self._pipe.cond:
            return self._pipe.writer_closed and not self._pipe.buffer

    def _close_impl(self) -> None:
        pipe = self._pipe
        with pipe.cond:
            pipe.reader_closed = True
            pipe.cond.notify_all()


class _LegacyPipedOutputStream(PipedOutputStream):
    """Write side of a legacy pipe: lock and notify per chunk."""

    def write(self, payload) -> None:
        self._ensure_open()
        pipe = self._pipe
        view = payload if isinstance(payload, memoryview) \
            else memoryview(payload)
        offset = 0
        while offset < len(view):
            with pipe.cond:
                wait_until(
                    pipe.cond,
                    lambda: pipe.reader_closed
                    or len(pipe.buffer) < pipe.capacity)
                if pipe.reader_closed:
                    raise StreamClosedException("pipe reader closed")
                room = pipe.capacity - len(pipe.buffer)
                chunk = view[offset:offset + room]
                pipe.buffer.extend(chunk)
                offset += len(chunk)
                pipe.cond.notify_all()

    def writev(self, segments) -> None:
        for segment in segments:
            self.write(segment)

    def _close_impl(self) -> None:
        pipe = self._pipe
        with pipe.cond:
            pipe.writer_closed = True
            pipe.cond.notify_all()


def make_pipe(capacity: int = DEFAULT_PIPE_CAPACITY, owner=None,
              legacy: bool = False) \
        -> tuple[PipedInputStream, PipedOutputStream]:
    """Create a connected (reader, writer) pipe pair.

    ``legacy=True`` builds the pre-ring bytearray channel — kept only so
    the IPC benchmarks can measure the ring against its predecessor.
    """
    if legacy:
        legacy_pipe = _LegacyPipe(capacity)
        reader: PipedInputStream = _LegacyPipedInputStream(legacy_pipe)
        writer: PipedOutputStream = _LegacyPipedOutputStream(legacy_pipe)
    else:
        pipe = RingPipe(capacity)
        reader = PipedInputStream(pipe)
        writer = PipedOutputStream(pipe)
    reader.owner = owner
    writer.owner = owner
    return reader, writer


# --------------------------------------------------------------------------
# Buffered streams — the transport fast path
# --------------------------------------------------------------------------

#: Default buffer size for the buffered stream wrappers.
DEFAULT_BUFFER_SIZE = 8192


class BufferedInputStream(InputStream):
    """Bulk-reading wrapper: pipe lock traffic scales with chunks, not bytes.

    ``read_line`` on a bare :class:`PipedInputStream` costs one pipe
    condition-variable acquisition *per byte* (``read_byte`` → ``read``).
    This wrapper pulls ``buffer_size`` bytes per underlying ``read`` and
    serves ``read`` / ``read_byte`` / ``read_line`` / ``read_exactly``
    from the in-memory chunk; ``read_line`` scans with ``bytes.find``.

    ``peek_byte`` looks at the next byte without consuming it — the
    dist protocol's wire-format sniff (JSON line vs binary frame) needs
    exactly one byte of lookahead.
    """

    def __init__(self, source: InputStream,
                 buffer_size: int = DEFAULT_BUFFER_SIZE):
        super().__init__()
        self._source = source
        self._buffer_size = max(1, buffer_size)
        self._chunk = b""
        self._pos = 0

    @property
    def source(self) -> InputStream:
        return self._source

    def _buffered(self) -> int:
        return len(self._chunk) - self._pos

    def _fill(self) -> bool:
        """Refill the internal chunk; False at end of stream."""
        self._chunk = self._source.read(self._buffer_size)
        self._pos = 0
        return bool(self._chunk)

    def read(self, size: int = -1) -> bytes:
        self._ensure_open()
        if size is not None and size == 0:
            return b""
        if self._buffered():
            if size is None or size < 0:
                chunk = self._chunk[self._pos:]
                self._pos = len(self._chunk)
            else:
                chunk = self._chunk[self._pos:self._pos + size]
                self._pos += len(chunk)
            return chunk
        # Nothing buffered: large reads go straight through, small ones
        # refill the buffer first.
        if size is not None and 0 <= size < self._buffer_size:
            if not self._fill():
                return b""
            chunk = self._chunk[self._pos:self._pos + size]
            self._pos += len(chunk)
            return chunk
        return self._source.read(size)

    def read_byte(self) -> int:
        self._ensure_open()
        if self._pos >= len(self._chunk) and not self._fill():
            return -1
        byte = self._chunk[self._pos]
        self._pos += 1
        return byte

    def peek_byte(self) -> int:
        """The next byte without consuming it; -1 at end of stream."""
        self._ensure_open()
        if self._pos >= len(self._chunk) and not self._fill():
            return -1
        return self._chunk[self._pos]

    def read_line(self) -> Optional[bytes]:
        self._ensure_open()
        pieces: list[bytes] = []
        while True:
            if self._pos >= len(self._chunk) and not self._fill():
                if pieces:
                    return b"".join(pieces)
                return None
            newline = self._chunk.find(b"\n", self._pos)
            if newline >= 0:
                pieces.append(self._chunk[self._pos:newline])
                self._pos = newline + 1
                return b"".join(pieces)
            pieces.append(self._chunk[self._pos:])
            self._pos = len(self._chunk)

    def read_exactly(self, size: int) -> bytes:
        self._ensure_open()
        pieces: list[bytes] = []
        remaining = size
        while remaining > 0:
            if not self._buffered() and remaining >= self._buffer_size:
                # Large remainder: bypass the buffer entirely.
                chunk = self._source.read(remaining)
                if not chunk:
                    raise EOFException(
                        f"expected {size} bytes, got {size - remaining}")
            else:
                chunk = self.read(remaining)
                if not chunk:
                    raise EOFException(
                        f"expected {size} bytes, got {size - remaining}")
            pieces.append(chunk)
            remaining -= len(chunk)
        return b"".join(pieces)

    def try_read(self, size: int = -1) -> Optional[bytes]:
        """Non-blocking read (see ``PipedInputStream.try_read``).

        Buffered bytes are always served immediately; an empty buffer
        defers to the source's ``try_read`` and refills from whatever it
        yields.  Sources without a non-blocking path fall back to a
        plain (potentially blocking) read.
        """
        self._ensure_open()
        if size is not None and size == 0:
            return b""
        if self._buffered():
            return self.read(size)
        source_try = getattr(self._source, "try_read", None)
        if source_try is None:
            return self.read(size)
        chunk = source_try(self._buffer_size)
        if not chunk:
            return chunk  # None (would block) or b"" (EOF)
        self._chunk = chunk
        self._pos = 0
        return self.read(size)

    def readable_hint(self) -> bool:
        if self._buffered():
            return True
        hint = getattr(self._source, "readable_hint", None)
        return hint() if hint is not None else True

    def wait_point(self):
        return self._source.wait_point()

    def available(self) -> int:
        return self._buffered() + self._source.available()

    def at_eof_hint(self) -> bool:
        """Non-blocking EOF probe (see PipedInputStream.at_eof_hint)."""
        if self._buffered():
            return False
        hint = getattr(self._source, "at_eof_hint", None)
        return hint() if hint is not None else False

    def _close_impl(self) -> None:
        self._source.close()


class BufferedOutputStream(OutputStream):
    """Write-combining wrapper with explicit ``flush``.

    Small writes accumulate in an internal buffer and reach the
    underlying stream (one pipe lock acquisition per drain) when the
    buffer fills or ``flush`` is called; writes at least as large as the
    buffer bypass it.
    """

    def __init__(self, sink: OutputStream,
                 buffer_size: int = DEFAULT_BUFFER_SIZE):
        super().__init__()
        self._sink = sink
        self._buffer_size = max(1, buffer_size)
        self._buffer = bytearray()
        self._lock = threading.RLock()

    @property
    def sink(self) -> OutputStream:
        return self._sink

    def buffered_count(self) -> int:
        with self._lock:
            return len(self._buffer)

    def _drain(self) -> None:
        if self._buffer:
            payload = bytes(self._buffer)
            del self._buffer[:]
            self._sink.write(payload)

    def write(self, payload) -> None:
        self._ensure_open()
        with self._lock:
            if len(payload) >= self._buffer_size:
                # Large-write bypass: flush whatever is pending, then
                # ship the caller's buffer directly — copying a payload
                # that already exceeds the coalescing threshold into the
                # chunk would buy nothing and cost a full extra copy.
                self._drain()
                self._sink.write(payload)
                return
            self._buffer.extend(payload)
            if len(self._buffer) >= self._buffer_size:
                self._drain()

    def writev(self, segments) -> None:
        """Gather-write: coalesce small segments, bypass with large ones.

        Produces at most one sink ``writev`` (or a short write sequence
        on sinks without one) for the whole vector, with the pending
        chunk flushed in order ahead of any bypassing segment.
        """
        self._ensure_open()
        with self._lock:
            out = []
            for segment in segments:
                if len(segment) >= self._buffer_size:
                    if self._buffer:
                        out.append(bytes(self._buffer))
                        del self._buffer[:]
                    out.append(segment)
                else:
                    self._buffer.extend(segment)
                    if len(self._buffer) >= self._buffer_size:
                        out.append(bytes(self._buffer))
                        del self._buffer[:]
            if out:
                self._sink.writev(out)

    def flush(self) -> None:
        with self._lock:
            self._drain()
            self._sink.flush()

    def reader_gone_hint(self) -> bool:
        """Non-blocking EPIPE probe (see PipedOutputStream)."""
        hint = getattr(self._sink, "reader_gone_hint", None)
        return hint() if hint is not None else False

    def _close_impl(self) -> None:
        with self._lock:
            try:
                self._drain()
                self._sink.flush()
            finally:
                self._sink.close()


# --------------------------------------------------------------------------
# Print streams and readers
# --------------------------------------------------------------------------

class PrintStream(OutputStream):
    """Character-friendly output with Java's no-throw discipline.

    A ``PrintStream`` never raises :class:`IOException`; failures set an
    internal flag readable via :meth:`check_error`.  This matters for the
    multi-application VM: an application whose output pipe disappears keeps
    running (Section 5.1 discusses shared standard streams).
    """

    def __init__(self, out: OutputStream, auto_flush: bool = True,
                 encoding: str = "utf-8"):
        super().__init__()
        self._out = out
        self._auto_flush = auto_flush
        self._encoding = encoding
        self._error = False
        self._lock = threading.RLock()

    @property
    def target(self) -> OutputStream:
        return self._out

    def _note_error(self, where: str, exc: IOException) -> None:
        # Report only on the transition into the error state so a wedged
        # stream produces one diagnostic, not one per print call.  A closed
        # pipe is the Unix SIGPIPE analogue — routine pipeline shutdown,
        # surfaced via check_error() — so it stays silent.
        if not self._error:
            self._error = True
            if not isinstance(exc, StreamClosedException):
                _report_diagnostic(
                    self, f"PrintStream {where} failed: {exc}")

    def write(self, payload) -> None:
        if isinstance(payload, str):
            payload = payload.encode(self._encoding)
        with self._lock:
            try:
                self._out.write(payload)
                if self._auto_flush:
                    self._out.flush()
            except IOException as exc:
                self._note_error("write", exc)

    def print(self, value: object = "") -> None:
        self.write(str(value))

    def println(self, value: object = "") -> None:
        self.write(str(value) + "\n")

    def printf(self, template: str, *args: object) -> None:
        self.write(template % args if args else template)

    def check_error(self) -> bool:
        with self._lock:
            try:
                self._out.flush()
            except IOException as exc:
                self._note_error("flush", exc)
            return self._error

    def flush(self) -> None:
        with self._lock:
            try:
                self._out.flush()
            except IOException as exc:
                self._note_error("flush", exc)

    def _close_impl(self) -> None:
        try:
            self._out.close()
        except IOException as exc:
            self._note_error("close", exc)


class LineReader:
    """Buffered text reader over an :class:`InputStream`.

    The terminal and shell (Section 6) read user input line by line; this
    is their ``BufferedReader``.
    """

    def __init__(self, source: InputStream, encoding: str = "utf-8"):
        self._source = source
        self._encoding = encoding

    def read_line(self) -> Optional[str]:
        """One line without its terminator; None at end of stream."""
        raw = self._source.read_line()
        if raw is None:
            return None
        return raw.decode(self._encoding, errors="replace")

    def read_all(self) -> str:
        return self._source.read_all().decode(self._encoding,
                                              errors="replace")

    def close(self) -> None:
        self._source.close()


class TeeOutputStream(OutputStream):
    """Duplicates writes to two underlying streams (used by tests)."""

    def __init__(self, first: OutputStream, second: OutputStream):
        super().__init__()
        self._first = first
        self._second = second

    def write(self, payload: bytes) -> None:
        self._ensure_open()
        self._first.write(payload)
        self._second.write(payload)

    def flush(self) -> None:
        self._first.flush()
        self._second.flush()


class CountingOutputStream(OutputStream):
    """Counts bytes written; sink for throughput benchmarks."""

    def __init__(self):
        super().__init__()
        self.count = 0

    def write(self, payload: bytes) -> None:
        self._ensure_open()
        self.count += len(payload)


class HostOutputStream(OutputStream):
    """Adapter onto a real Python file object (host stdout/stderr)."""

    def __init__(self, fileobj):
        super().__init__()
        self._fileobj = fileobj

    def write(self, payload: bytes) -> None:
        self._ensure_open()
        if hasattr(self._fileobj, "buffer"):
            self._fileobj.buffer.write(payload)
        else:
            self._fileobj.write(payload.decode("utf-8", errors="replace"))

    def flush(self) -> None:
        self._fileobj.flush()

    def _close_impl(self) -> None:
        # Never close the host's real stdio.
        self.flush()


class HostInputStream(InputStream):
    """Adapter onto a real Python file object (host stdin)."""

    def __init__(self, fileobj):
        super().__init__()
        self._fileobj = fileobj

    def read(self, size: int = -1) -> bytes:
        self._ensure_open()
        raw = self._fileobj.buffer if hasattr(self._fileobj, "buffer") \
            else self._fileobj
        data = raw.read(size if size is not None and size >= 0 else -1)
        if isinstance(data, str):
            data = data.encode("utf-8")
        return data or b""
