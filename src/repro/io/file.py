"""The ``java.io.File`` layer: security checks above, Unix semantics below.

This is where the paper's two access-control layers meet (Section 3.3's
``delete()`` example is implemented verbatim):

1. every sensitive operation first asks the *system* security manager
   (``checkRead`` / ``checkWrite`` / ``checkDelete``);
2. only then does the private "real" operation touch the virtual file
   system, acting as the *OS user of the JVM process*.

The paper's Feature 3 asymmetry is reproduced exactly: files the JVM
process user cannot reach surface as ``FileNotFoundException`` (the OS hides
them), whereas a Java-policy denial surfaces as ``SecurityException``.
"""

from __future__ import annotations

from typing import Optional

from repro.io.streams import InputStream, OutputStream
from repro.jvm.errors import FileNotFoundException, IOException
from repro.unixfs.vfs import (
    VfsError,
    VfsFileHandle,
    VfsNotFound,
    VfsPermissionDenied,
    VirtualFileSystem,
)


def _translate_read_error(exc: VfsError) -> IOException:
    """Feature 3: OS-invisible files look absent, not forbidden."""
    if isinstance(exc, (VfsNotFound, VfsPermissionDenied)):
        return FileNotFoundException(exc.path)
    return IOException(str(exc))


def _translate_write_error(exc: VfsError) -> IOException:
    if isinstance(exc, VfsNotFound):
        return FileNotFoundException(exc.path)
    if isinstance(exc, VfsPermissionDenied):
        return FileNotFoundException(exc.path)
    return IOException(str(exc))


class JFile:
    """A path bound to an invocation context.

    Relative paths resolve against the application's current working
    directory (application-wide state, Section 5.1) — or the JVM process's
    cwd in single-application mode.
    """

    def __init__(self, ctx, path: str):
        self._ctx = ctx
        self._vm = ctx.vm
        self.path = VirtualFileSystem.normalize(path, ctx.cwd)

    # -- plumbing ---------------------------------------------------------------

    def _vfs(self) -> VirtualFileSystem:
        return self._vm.os_context.vfs

    def _os_user(self):
        return self._vm.os_context.user

    def _sm(self):
        return self._vm.security_manager

    # -- queries (require read access) ----------------------------------------------

    def exists(self) -> bool:
        sm = self._sm()
        if sm is not None:
            sm.check_read(self.path)
        return self._vfs().exists(self.path, self._os_user())

    def is_directory(self) -> bool:
        sm = self._sm()
        if sm is not None:
            sm.check_read(self.path)
        return self._vfs().is_dir(self.path, self._os_user())

    def is_file(self) -> bool:
        sm = self._sm()
        if sm is not None:
            sm.check_read(self.path)
        return self._vfs().is_file(self.path, self._os_user())

    def length(self) -> int:
        sm = self._sm()
        if sm is not None:
            sm.check_read(self.path)
        try:
            stat = self._vfs().stat(self.path, self._os_user())
        except VfsError as exc:
            raise _translate_read_error(exc) from exc
        return stat.size if stat.kind == "file" else 0

    def last_modified(self) -> int:
        sm = self._sm()
        if sm is not None:
            sm.check_read(self.path)
        try:
            return self._vfs().stat(self.path, self._os_user()).mtime
        except VfsError as exc:
            raise _translate_read_error(exc) from exc

    def list(self) -> list[str]:
        sm = self._sm()
        if sm is not None:
            sm.check_read(self.path)
        try:
            return self._vfs().listdir(self.path, self._os_user())
        except VfsError as exc:
            raise _translate_read_error(exc) from exc

    # -- mutations ---------------------------------------------------------------------

    def mkdir(self) -> None:
        sm = self._sm()
        if sm is not None:
            sm.check_write(self.path)
        try:
            self._vfs().mkdir(self.path, self._os_user())
        except VfsError as exc:
            raise _translate_write_error(exc) from exc

    def create_new_file(self) -> bool:
        sm = self._sm()
        if sm is not None:
            sm.check_write(self.path)
        if self._vfs().exists(self.path, self._os_user()):
            return False
        try:
            self._vfs().create_file(self.path, self._os_user())
        except VfsError as exc:
            raise _translate_write_error(exc) from exc
        return True

    def delete(self) -> None:
        """Section 3.3's running example, implemented as printed::

            public void delete() {
              securityManager.checkDelete();
              realDelete();
            }
        """
        sm = self._sm()
        if sm is not None:
            sm.check_delete(self.path)
        self._real_delete()

    def _real_delete(self) -> None:
        """The private method "that actually deletes the file"."""
        vfs, user = self._vfs(), self._os_user()
        try:
            if vfs.is_dir(self.path, user):
                vfs.rmdir(self.path, user)
            else:
                vfs.unlink(self.path, user)
        except VfsError as exc:
            raise _translate_write_error(exc) from exc

    def rename_to(self, other: "JFile") -> None:
        sm = self._sm()
        if sm is not None:
            sm.check_write(self.path)
            sm.check_write(other.path)
        try:
            self._vfs().rename(self.path, other.path, self._os_user())
        except VfsError as exc:
            raise _translate_write_error(exc) from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JFile({self.path!r})"


class FileInputStream(InputStream):
    """Checked, VFS-backed byte input."""

    def __init__(self, ctx, path: str):
        super().__init__()
        jfile = JFile(ctx, path)
        sm = jfile._sm()
        if sm is not None:
            sm.check_read(jfile.path)
        try:
            self._handle: VfsFileHandle = jfile._vfs().open(
                jfile.path, jfile._os_user(), "r")
        except VfsError as exc:
            raise _translate_read_error(exc) from exc
        self.path = jfile.path
        if ctx.app is not None:
            self.owner = ctx.app
            ctx.app.register_opened_stream(self)

    def read(self, size: int = -1) -> bytes:
        self._ensure_open()
        try:
            return self._handle.read(size)
        except VfsError as exc:
            raise IOException(str(exc)) from exc

    def available(self) -> int:
        return 0 if self.closed else 1

    def _close_impl(self) -> None:
        self._handle.close()


class FileOutputStream(OutputStream):
    """Checked, VFS-backed byte output (``append=True`` for ``>>``)."""

    def __init__(self, ctx, path: str, append: bool = False):
        super().__init__()
        jfile = JFile(ctx, path)
        sm = jfile._sm()
        if sm is not None:
            sm.check_write(jfile.path)
        mode = "a" if append else "w"
        try:
            self._handle: VfsFileHandle = jfile._vfs().open(
                jfile.path, jfile._os_user(), mode)
        except VfsError as exc:
            raise _translate_write_error(exc) from exc
        self.path = jfile.path
        if ctx.app is not None:
            self.owner = ctx.app
            ctx.app.register_opened_stream(self)

    def write(self, payload: bytes) -> None:
        self._ensure_open()
        try:
            self._handle.write(payload)
        except VfsError as exc:
            raise IOException(str(exc)) from exc

    def _close_impl(self) -> None:
        self._handle.close()


def read_text(ctx, path: str, encoding: str = "utf-8") -> str:
    """Convenience: read a whole file as text (checked)."""
    stream = FileInputStream(ctx, path)
    try:
        return stream.read_all().decode(encoding)
    finally:
        stream.close()


def write_text(ctx, path: str, text: str, append: bool = False,
               encoding: str = "utf-8") -> None:
    """Convenience: write text to a file (checked)."""
    stream = FileOutputStream(ctx, path, append=append)
    try:
        stream.write(text.encode(encoding))
    finally:
        stream.close()
